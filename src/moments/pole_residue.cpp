#include "relmore/moments/pole_residue.hpp"

#include <cmath>
#include <stdexcept>

#include "relmore/linalg/matrix.hpp"
#include "relmore/moments/tree_moments.hpp"
#include "relmore/util/polynomial.hpp"

namespace relmore::moments {

bool PoleResidueModel::stable() const {
  for (const Complex& p : poles) {
    if (p.real() >= 0.0) return false;
  }
  return !poles.empty();
}

double PoleResidueModel::dc_gain() const {
  Complex acc{0.0, 0.0};
  for (std::size_t j = 0; j < poles.size(); ++j) acc += residues[j] / (-poles[j]);
  return acc.real();
}

double PoleResidueModel::step_response(double t, double v_supply) const {
  if (t < 0.0) return 0.0;
  Complex acc{0.0, 0.0};
  for (std::size_t j = 0; j < poles.size(); ++j) {
    acc += residues[j] / poles[j] * std::exp(poles[j] * t);
  }
  return v_supply * (dc_gain() + acc.real());
}

double PoleResidueModel::exp_input_response(double t, double v_supply, double tau) const {
  if (tau <= 0.0) throw std::invalid_argument("exp_input_response: tau must be positive");
  if (t <= 0.0) return 0.0;
  // Input poles at 0 and -a. Keep -a off the system poles.
  double a = 1.0 / tau;
  for (const Complex& p : poles) {
    if (std::abs(p + a) < 1e-9 * std::abs(p)) a *= 1.0 + 1e-7;
  }
  // v(t) = V [ H(0) - H(-a) e^{-a t} + sum_j r_j U(p_j) e^{p_j t} ] with
  // U(s) = 1/s - 1/(s + a).
  Complex h_at_minus_a{0.0, 0.0};
  Complex acc{0.0, 0.0};
  for (std::size_t j = 0; j < poles.size(); ++j) {
    h_at_minus_a += residues[j] / (-a - poles[j]);
    const Complex u = 1.0 / poles[j] - 1.0 / (poles[j] + a);
    acc += residues[j] * u * std::exp(poles[j] * t);
  }
  return v_supply * (dc_gain() - h_at_minus_a.real() * std::exp(-a * t) + acc.real());
}

double PoleResidueModel::ramp_input_response(double t, double v_supply, double rise) const {
  if (rise <= 0.0) return step_response(t, v_supply);
  if (t <= 0.0) return 0.0;
  // Integral of the step response: S(t) = H(0) t + sum_j (r_j/p_j^2)(e^{p_j t} - 1)
  // (r_j/p_j is the step-transient coefficient; one more /p_j integrates).
  const auto integrated = [&](double tt) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < poles.size(); ++j) {
      acc += residues[j] / (poles[j] * poles[j]) * (std::exp(poles[j] * tt) - 1.0);
    }
    return dc_gain() * tt + acc.real();
  };
  const double s_now = integrated(t);
  const double s_shift = t > rise ? integrated(t - rise) : 0.0;
  return v_supply / rise * (s_now - s_shift);
}

sim::Waveform PoleResidueModel::step_waveform(const std::vector<double>& times,
                                              double v_supply) const {
  std::vector<double> v(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) v[i] = step_response(times[i], v_supply);
  return sim::Waveform(times, v);
}

PoleResidueModel awe_model(const std::vector<double>& node_moments, int q) {
  if (q < 1) throw std::invalid_argument("awe_model: q must be >= 1");
  const std::size_t need = 2 * static_cast<std::size_t>(q);
  if (node_moments.size() < need) {
    throw std::invalid_argument("awe_model: need at least 2q moments (m_0..m_{2q-1})");
  }
  const std::size_t uq = static_cast<std::size_t>(q);

  // Circuit moments span many decades (m_k ~ tau^k); normalize time by
  // tau = |m_1| so the Hankel system is well scaled, then un-scale the
  // poles/residues at the end. Without this the system is numerically
  // singular for picosecond-scale interconnect.
  const double tau = std::abs(node_moments[1]);
  if (tau == 0.0) throw std::invalid_argument("awe_model: vanishing first moment");
  std::vector<double> m(need);
  double scale = 1.0;
  for (std::size_t k = 0; k < need; ++k) {
    m[k] = node_moments[k] / scale;
    scale *= tau;
  }

  // Solve for denominator coefficients b_1..b_q (scaled domain):
  //   m_k + sum_{j=1..q} b_j m_{k-j} = 0   for k = q .. 2q-1.
  linalg::Matrix A(uq, uq);
  std::vector<double> rhs(uq);
  for (std::size_t row = 0; row < uq; ++row) {
    const std::size_t k = uq + row;
    rhs[row] = -m[k];
    for (std::size_t j = 1; j <= uq; ++j) A(row, j - 1) = m[k - j];
  }
  std::vector<double> b;
  try {
    b = linalg::LuFactor(A).solve(rhs);
  } catch (const std::runtime_error&) {
    throw std::runtime_error("awe_model: singular Hankel system (degenerate moments)");
  }

  // Numerator a_0..a_{q-1}: a_k = m_k + sum_{j=1..min(k,q)} b_j m_{k-j}.
  std::vector<double> a(uq);
  for (std::size_t k = 0; k < uq; ++k) {
    double acc = m[k];
    for (std::size_t j = 1; j <= k; ++j) acc += b[j - 1] * m[k - j];
    a[k] = acc;
  }

  std::vector<double> den(uq + 1);
  den[0] = 1.0;
  for (std::size_t j = 1; j <= uq; ++j) den[j] = b[j - 1];
  const util::Polynomial denom{den};
  const util::Polynomial numer{a};
  const util::Polynomial dden = denom.derivative();

  PoleResidueModel model;
  model.poles = denom.roots();
  model.residues.reserve(model.poles.size());
  for (Complex& p : model.poles) {
    const Complex dp = dden(p);
    if (std::abs(dp) == 0.0) throw std::runtime_error("awe_model: repeated pole");
    // Un-scale: scaled s' = tau * s, so physical pole = p/tau and the
    // strictly-proper residue picks up a 1/tau as well.
    model.residues.push_back(numer(p) / dp / tau);
    p /= tau;
  }
  return model;
}

PoleResidueModel two_pole_model(double m1, double m2) {
  const double b1 = -m1;
  const double b2 = m1 * m1 - m2;
  if (b2 == 0.0) {
    // Degenerate single-pole case (pure RC first-order behaviour).
    if (b1 <= 0.0) throw std::invalid_argument("two_pole_model: non-causal moments");
    PoleResidueModel model;
    model.poles = {Complex{-1.0 / b1, 0.0}};
    model.residues = {Complex{1.0 / b1, 0.0}};
    return model;
  }
  // Poles: roots of 1 + b1 s + b2 s^2.
  const util::Polynomial denom{{1.0, b1, b2}};
  const util::Polynomial dden = denom.derivative();
  PoleResidueModel model;
  model.poles = denom.roots();
  for (const Complex& p : model.poles) {
    // Numerator is the constant 1, so the residue is 1/denom'(p).
    model.residues.push_back(Complex{1.0, 0.0} / dden(p));
  }
  return model;
}

std::vector<PoleResidueModel> awe_models_for_tree(const circuit::RlcTree& tree, int q) {
  if (q < 1) throw std::invalid_argument("awe_models_for_tree: q must be >= 1");
  const auto m = tree_moments(tree, 2 * q - 1);
  std::vector<PoleResidueModel> out;
  out.reserve(tree.size());
  std::vector<double> node_m(static_cast<std::size_t>(2 * q));
  for (std::size_t node = 0; node < tree.size(); ++node) {
    for (int k = 0; k < 2 * q; ++k) {
      node_m[static_cast<std::size_t>(k)] = m[static_cast<std::size_t>(k)][node];
    }
    PoleResidueModel model;
    bool done = false;
    for (int order = q; order >= 1 && !done; --order) {
      try {
        model = awe_model(node_m, order);
        done = true;
      } catch (const std::runtime_error&) {
        // Hankel degeneracy (the node's true order is lower): retry smaller.
      }
    }
    if (!done) throw std::runtime_error("awe_models_for_tree: no order succeeded");
    out.push_back(std::move(model));
  }
  return out;
}

PoleResidueModel stabilized(const PoleResidueModel& model) {
  if (model.stable()) return model;
  PoleResidueModel out;
  for (std::size_t i = 0; i < model.poles.size(); ++i) {
    if (model.poles[i].real() < 0.0) {
      out.poles.push_back(model.poles[i]);
      out.residues.push_back(model.residues[i]);
    }
  }
  if (out.poles.empty()) {
    throw std::invalid_argument("stabilized: model has no stable poles");
  }
  const double gain = out.dc_gain();
  if (gain == 0.0) throw std::invalid_argument("stabilized: zero DC gain after filtering");
  for (Complex& r : out.residues) r /= gain;
  return out;
}

}  // namespace relmore::moments
