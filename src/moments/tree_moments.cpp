#include "relmore/moments/tree_moments.hpp"

#include <stdexcept>

namespace relmore::moments {

using circuit::RlcTree;
using circuit::SectionId;

std::vector<std::vector<double>> tree_moments(const RlcTree& tree, int max_order) {
  if (tree.empty()) throw std::invalid_argument("tree_moments: empty tree");
  if (max_order < 0) throw std::invalid_argument("tree_moments: max_order must be >= 0");
  const std::size_t n = tree.size();
  std::vector<std::vector<double>> m(static_cast<std::size_t>(max_order) + 1,
                                     std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) m[0][i] = 1.0;

  // Subtree capacitive-weighted sums of the two previous orders.
  std::vector<double> s_prev1(n);  // S_{q-1}
  std::vector<double> s_prev2(n);  // S_{q-2}

  auto subtree_sums = [&](const std::vector<double>& order_m, std::vector<double>& out) {
    // Children have larger ids (append-only invariant), so a reverse scan
    // accumulates child sums into parents in one pass.
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = tree.section(static_cast<SectionId>(i)).v.capacitance * order_m[i];
    }
    for (std::size_t i = n; i-- > 0;) {
      const SectionId parent = tree.section(static_cast<SectionId>(i)).parent;
      if (parent != circuit::kInput) out[static_cast<std::size_t>(parent)] += out[i];
    }
  };

  for (int q = 1; q <= max_order; ++q) {
    subtree_sums(m[static_cast<std::size_t>(q - 1)], s_prev1);
    if (q >= 2) {
      subtree_sums(m[static_cast<std::size_t>(q - 2)], s_prev2);
    } else {
      std::fill(s_prev2.begin(), s_prev2.end(), 0.0);
    }
    // Downward pass: path sums (parents have smaller ids).
    auto& mq = m[static_cast<std::size_t>(q)];
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<SectionId>(i);
      const auto& v = tree.section(id).v;
      const SectionId parent = tree.section(id).parent;
      const double upstream = parent == circuit::kInput
                                  ? 0.0
                                  : mq[static_cast<std::size_t>(parent)];
      mq[i] = upstream - (v.resistance * s_prev1[i] + v.inductance * s_prev2[i]);
    }
  }
  return m;
}

FirstTwoMoments first_two_moments(const RlcTree& tree, SectionId node) {
  const auto m = tree_moments(tree, 2);
  return {m[1][static_cast<std::size_t>(node)], m[2][static_cast<std::size_t>(node)]};
}

}  // namespace relmore::moments
