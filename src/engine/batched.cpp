#include "relmore/engine/batched.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "relmore/circuit/validate.hpp"
#include "relmore/eed/second_order.hpp"
#include "relmore/engine/batch.hpp"
#include "relmore/engine/tuner.hpp"
#include "relmore/util/arena.hpp"
#include "relmore/util/fault_injector.hpp"

namespace relmore::engine {

using circuit::SectionId;

/// SIMD-only OpenMP pragma on the fixed-width lane loops (defined from
/// CMake when -fopenmp-simd is available). Without it GCC if-converts the
/// parent-row reads into masked loads and then fails to vectorize the
/// loop; the pragma asserts lane independence (true: lanes are distinct
/// samples) and restores clean vector codegen. Semantics are unchanged —
/// each lane still runs its operations in the scalar association order.
#if defined(RELMORE_HAVE_OPENMP_SIMD)
#define RELMORE_SIMD _Pragma("omp simd")
#else
#define RELMORE_SIMD
#endif

/// Function multi-versioning for the hot kernels, exactly as in
/// sim/batch_sim.cpp: GCC emits a portable baseline clone plus an
/// x86-64-v3 (AVX2) clone behind an ifunc resolver, so one binary
/// vectorizes at full lane width on capable CPUs without any -march build
/// flag. Bitwise-safe: every clone runs the same IEEE operations, just at
/// different vector widths, and the repo-wide -ffp-contract=off applies
/// to all clones, so no FMA contraction can make them diverge.
/// Disabled under ThreadSanitizer: the ifunc resolvers run during early
/// relocation, before the TSan runtime is initialized, and the
/// interceptor-instrumented resolver segfaults at load time.
#if defined(__SANITIZE_THREAD__)
#define RELMORE_KERNEL_CLONES
#elif defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define RELMORE_KERNEL_CLONES __attribute__((target_clones("default", "arch=x86-64-v3")))
#else
#define RELMORE_KERNEL_CLONES
#endif

namespace {

/// Upstream prefix of a root section: all lanes zero. Sized for the
/// widest supported lane group.
constexpr double kZeroPrefix[8] = {};

/// How many sections ahead the sweep loops prefetch the parent-indexed
/// row. The gather is the one access pattern the hardware prefetcher
/// cannot predict; ~16 iterations covers an L2 hit's latency at the
/// sweeps' throughput without thrashing the L1 fill buffers.
constexpr std::size_t kPrefetchAhead = 16;

/// Verdict of one branch-free validity scan over a value buffer.
struct ValueScan {
  double lowest = 0.0;  ///< min(0, values) — negative iff any value is
  double poison = 0.0;  ///< NaN iff any value is NaN or ±Inf, else 0
  [[nodiscard]] bool non_finite() const { return !(poison == 0.0); }
  [[nodiscard]] bool bad() const { return lowest < 0.0 || non_finite(); }
  void merge(const ValueScan& o) {
    lowest = std::min(lowest, o.lowest);
    poison += o.poison;
  }
};

/// Validity scan with eight explicit accumulator pairs. A serial
/// `lowest = std::min(lowest, ...)` scan chains at the min instruction's
/// latency and dominates the whole batched pipeline; eight independent
/// chains keep the FP pipe saturated whether or not the loop vectorizes
/// (measured ~3x over the serial form even in scalar codegen). The min
/// alone has a NaN hole — min(x, NaN) is x — so a poison accumulator
/// rides along: v * 0.0 is 0 for every finite v and NaN for NaN/±Inf,
/// turning "any non-finite value?" into one comparison at the end.
ValueScan scan_values(const double* buf, std::size_t count) {
  double m[8] = {};
  double p[8] = {};
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    RELMORE_SIMD
    for (std::size_t j = 0; j < 8; ++j) {
      m[j] = std::min(m[j], buf[i + j]);
      p[j] += buf[i + j] * 0.0;
    }
  }
  ValueScan out;
  for (; i < count; ++i) {
    out.lowest = std::min(out.lowest, buf[i]);
    out.poison += buf[i] * 0.0;
  }
  for (const double v : m) out.lowest = std::min(out.lowest, v);
  for (const double v : p) out.poison += v;
  return out;
}

/// Status for a rejected sample fill, preserving the historical
/// "negative element value" wording the original contract used.
util::Status bad_sample_status(const char* entry, std::size_t sample, bool non_finite) {
  return util::Status(
      non_finite ? util::ErrorCode::kNonFiniteValue : util::ErrorCode::kNegativeValue,
      std::string(entry) + (non_finite ? ": non-finite" : ": negative") +
          " element value in sample " + std::to_string(sample));
}

/// Sink called after the downward sweep finishes sections [lo, hi): the
/// rows completed by the tile are drained (copied to the output layout)
/// while still cache-hot. A plain function pointer — not a template
/// parameter — so the kernels keep plain-type signatures and
/// RELMORE_KERNEL_CLONES stays applicable to them.
using TileSinkFn = void (*)(void* ctx, std::size_t lo, std::size_t hi);

/// Sink for the path-walk kernel: one call per requested output row with
/// the walked prefix sums and the row's subtree-capacitance lanes.
using RowSinkFn = void (*)(void* ctx, std::size_t row, const double* acc_sr,
                           const double* acc_sl, const double* ctot_row);

/// Everything a drain sink needs: the output arrays, which scratch rows
/// to copy (ids ascending, with their output rows), and the per-lane
/// poison accumulators. One instance per lane-group task, so no sharing.
struct DrainCtx {
  double* out_sr = nullptr;
  double* out_sl = nullptr;
  double* out_ctot = nullptr;
  std::size_t padded = 0;  ///< output padded sample count
  std::size_t g = 0;       ///< lane-group index
  std::size_t w = 0;       ///< lane width
  const double* sr = nullptr;    ///< scratch, n*w (two-pass mode)
  const double* sl = nullptr;    ///< scratch, n*w (two-pass mode)
  const double* ctot = nullptr;  ///< scratch, n*w
  const SectionId* ids = nullptr;  ///< drain ids, ascending
  const int* rows = nullptr;       ///< output row of each drain id
  std::size_t count = 0;
  std::size_t cursor = 0;  ///< next drain entry; monotone across tiles
  double poison[8] = {};
};

/// Drains every requested row with id in [cursor's id, hi) — exactly the
/// rows the tile [lo, hi) just completed, because ids are ascending and
/// tiles arrive in order. Rescans the freshly copied (cache-hot) values
/// with the poison trick: each term is 0 for a finite value and NaN
/// otherwise, so after the sweep poison[t] answers "did lane t report any
/// non-finite moment?" without branching. Per-term multiplies — summing
/// first could overflow to Inf on legitimately huge finite moments. The
/// terms are all +0.0 or NaN, so accumulation order cannot change the
/// verdict (or the bits).
void drain_tile(void* vctx, std::size_t lo, std::size_t hi) {
  auto* d = static_cast<DrainCtx*>(vctx);
  (void)lo;
  const std::size_t w = d->w;
  while (d->cursor < d->count && static_cast<std::size_t>(d->ids[d->cursor]) < hi) {
    const auto i = static_cast<std::size_t>(d->ids[d->cursor]);
    const std::size_t dst =
        static_cast<std::size_t>(d->rows[d->cursor]) * d->padded + d->g * w;
    std::memcpy(d->out_sr + dst, d->sr + i * w, w * sizeof(double));
    std::memcpy(d->out_sl + dst, d->sl + i * w, w * sizeof(double));
    std::memcpy(d->out_ctot + dst, d->ctot + i * w, w * sizeof(double));
    const double* a = d->sr + i * w;
    const double* b = d->sl + i * w;
    const double* cc = d->ctot + i * w;
    RELMORE_SIMD
    for (std::size_t t = 0; t < w; ++t) {
      d->poison[t] += a[t] * 0.0 + b[t] * 0.0 + cc[t] * 0.0;
    }
    ++d->cursor;
  }
}

/// Path-walk drain: the walked prefix sums land directly in output row
/// `row` (the walk visits rows in output order, no cursor needed).
void drain_row(void* vctx, std::size_t row, const double* acc_sr, const double* acc_sl,
               const double* ctot_row) {
  auto* d = static_cast<DrainCtx*>(vctx);
  const std::size_t w = d->w;
  const std::size_t dst = row * d->padded + d->g * w;
  std::memcpy(d->out_sr + dst, acc_sr, w * sizeof(double));
  std::memcpy(d->out_sl + dst, acc_sl, w * sizeof(double));
  std::memcpy(d->out_ctot + dst, ctot_row, w * sizeof(double));
  RELMORE_SIMD
  for (std::size_t t = 0; t < w; ++t) {
    d->poison[t] += acc_sr[t] * 0.0 + acc_sl[t] * 0.0 + ctot_row[t] * 0.0;
  }
}

/// Upward pass (Fig. 17): subtree capacitance in one reverse id scan,
/// with the init fused in behind a lazy frontier. Values are read in
/// sample-major rows (`rows_c[t*n + i]` is lane t's value of section i —
/// both the stored arrays and the streaming staging use this layout), the
/// lane blocks `ctot[i*W + t]` are the working form.
///
/// The frontier invariant: rows [front, n) are initialized. Before
/// accumulating into parent p the loop forces front <= p, so a row is
/// always a pure overwrite of c before any child folds into it, and the
/// folds still arrive in descending child-id order — exactly the scalar
/// pass's per-location operation order, hence bitwise-equal results. The
/// fusion saves one full pass over ctot; the prefetch covers the
/// parent-row gather, the only access the hardware prefetcher cannot
/// predict.
///
/// The lane loops stage their cross-row reads through W-wide locals
/// (`up`/`mine` point into the same array, and without the copy the
/// compiler must assume they overlap and serialize the loop). Rows never
/// overlap (parent id != own id), so the staging is free of semantics.
template <std::size_t W>
RELMORE_KERNEL_CLONES void upward_pass(std::size_t n, const SectionId* parent,
                                       const double* rows_c, double* ctot) {
  // relmore-lint: begin-hot-loop(batched-upward)
  std::size_t front = n;
  for (std::size_t i = n; i-- > 0;) {
    if (i >= kPrefetchAhead) {
      const SectionId fp = parent[i - kPrefetchAhead];
      if (fp != circuit::kInput) {
        __builtin_prefetch(ctot + static_cast<std::size_t>(fp) * W, 1, 3);
      }
    }
    const SectionId p = parent[i];
    const std::size_t need = p == circuit::kInput ? i : static_cast<std::size_t>(p);
    while (front > need) {
      --front;
      double* dst = ctot + front * W;
      const double* src = rows_c + front;
      RELMORE_SIMD
      for (std::size_t t = 0; t < W; ++t) dst[t] = src[t * n];
    }
    if (p != circuit::kInput) {
      double* up = ctot + static_cast<std::size_t>(p) * W;
      const double* mine = ctot + i * W;
      RELMORE_SIMD
      for (std::size_t t = 0; t < W; ++t) up[t] += mine[t];
    }
  }
  // relmore-lint: end-hot-loop
}

/// Downward pass (Fig. 18): prefix sums along each root path, swept in
/// contiguous tiles of `tile_rows` sections (0 = whole tree). After each
/// tile the sink drains the just-completed rows while they are still
/// cache-hot, so at large n the output copy rides the sweep instead of
/// re-streaming three cold n*W arrays afterwards. Tiling changes only the
/// touch order — every sr/sl element is still computed by the identical
/// expression from already-final parent values (parents precede children
/// in id order), so results are bitwise-equal for every tile size.
template <std::size_t W>
RELMORE_KERNEL_CLONES void downward_pass(std::size_t n, const SectionId* parent,
                                         const double* rows_r, const double* rows_l,
                                         const double* ctot, double* sr, double* sl,
                                         std::size_t tile_rows, TileSinkFn sink, void* ctx) {
  const std::size_t tile = tile_rows == 0 ? n : tile_rows;
  for (std::size_t lo = 0; lo < n; lo += tile) {
    const std::size_t hi = lo + tile < n ? lo + tile : n;
    // relmore-lint: begin-hot-loop(batched-downward-tile)
    for (std::size_t i = lo; i < hi; ++i) {
      if (i + kPrefetchAhead < n) {
        const SectionId fp = parent[i + kPrefetchAhead];
        if (fp != circuit::kInput) {
          __builtin_prefetch(sr + static_cast<std::size_t>(fp) * W, 0, 3);
          __builtin_prefetch(sl + static_cast<std::size_t>(fp) * W, 0, 3);
        }
      }
      const SectionId p = parent[i];
      const double* up_sr =
          p == circuit::kInput ? kZeroPrefix : sr + static_cast<std::size_t>(p) * W;
      const double* up_sl =
          p == circuit::kInput ? kZeroPrefix : sl + static_cast<std::size_t>(p) * W;
      const std::size_t at = i * W;
      RELMORE_SIMD
      for (std::size_t t = 0; t < W; ++t) {
        sr[at + t] = up_sr[t] + rows_r[t * n + i] * ctot[at + t];
      }
      RELMORE_SIMD
      for (std::size_t t = 0; t < W; ++t) {
        sl[at + t] = up_sl[t] + rows_l[t * n + i] * ctot[at + t];
      }
    }
    // relmore-lint: end-hot-loop
    if (sink != nullptr) sink(ctx, lo, hi);
  }
}

/// Sparse-query alternative to the downward pass: when only a few shallow
/// nodes are requested, walking each one's root path and accumulating
/// r·ctot / l·ctot along it touches O(sum of path lengths) rows instead
/// of sweeping all n — and needs no sr/sl scratch at all. The
/// accumulation runs root -> node, which is exactly the association order
/// the recurrence unrolls to (the scalar root starts from the zero
/// prefix: 0.0 + r·ctot), so the walked sums are bitwise-equal to the
/// swept ones. `path` is caller scratch for one root path (n indices).
template <std::size_t W>
RELMORE_KERNEL_CLONES void pathwalk_pass(std::size_t n, const SectionId* parent,
                                         const double* rows_r, const double* rows_l,
                                         const double* ctot, const SectionId* ids,
                                         std::size_t count, std::size_t* path,
                                         RowSinkFn sink, void* ctx) {
  // relmore-lint: begin-hot-loop(batched-path-walk)
  for (std::size_t row = 0; row < count; ++row) {
    std::size_t depth = 0;
    for (SectionId j = ids[row]; j != circuit::kInput;
         j = parent[static_cast<std::size_t>(j)]) {
      path[depth++] = static_cast<std::size_t>(j);
    }
    double acc_sr[W] = {};
    double acc_sl[W] = {};
    while (depth-- > 0) {
      const std::size_t j = path[depth];
      const std::size_t at = j * W;
      RELMORE_SIMD
      for (std::size_t t = 0; t < W; ++t) acc_sr[t] += rows_r[t * n + j] * ctot[at + t];
      RELMORE_SIMD
      for (std::size_t t = 0; t < W; ++t) acc_sl[t] += rows_l[t * n + j] * ctot[at + t];
    }
    sink(ctx, row, acc_sr, acc_sl, ctot + static_cast<std::size_t>(ids[row]) * W);
  }
  // relmore-lint: end-hot-loop
}

/// One lane-group, fully swept: upward pass, then either the tiled
/// downward sweep (draining per tile) or the path walk (draining per
/// row). `path != nullptr` selects the walk.
template <std::size_t W>
void run_sweep(std::size_t n, const SectionId* parent, const double* rows_r,
               const double* rows_l, const double* rows_c, double* ctot, double* sr,
               double* sl, std::size_t tile_rows, std::size_t* path,
               const SectionId* walk_ids, std::size_t walk_count, DrainCtx* ctx) {
  upward_pass<W>(n, parent, rows_c, ctot);
  if (path != nullptr) {
    pathwalk_pass<W>(n, parent, rows_r, rows_l, ctot, walk_ids, walk_count, path,
                     &drain_row, ctx);
  } else {
    downward_pass<W>(n, parent, rows_r, rows_l, ctot, sr, sl, tile_rows, &drain_tile, ctx);
  }
}

}  // namespace

/// How one analysis call sweeps its lane-groups — resolved once per call,
/// shared read-only by every group task.
struct BatchedAnalyzer::SweepPlan {
  std::size_t tile_rows = 0;  ///< downward tile size; 0 = whole tree
  bool use_pathwalk = false;  ///< sparse shallow queries take the walk
  std::vector<circuit::SectionId> drain_ids;  ///< output ids, ascending
  std::vector<int> drain_rows;                ///< output row per drain id
};

// --- BatchedModels ----------------------------------------------------------

std::size_t BatchedModels::slot(std::size_t sample, SectionId id) const {
  if (sample >= samples_) throw std::out_of_range("BatchedModels: sample out of range");
  if (id < 0 || static_cast<std::size_t>(id) >= row_of_.size() ||
      row_of_[static_cast<std::size_t>(id)] < 0) {
    throw std::out_of_range("BatchedModels: node not covered by this analysis");
  }
  return static_cast<std::size_t>(row_of_[static_cast<std::size_t>(id)]) * padded_samples_ +
         sample;
}

double BatchedModels::sum_rc(std::size_t sample, SectionId id) const {
  return sr_[slot(sample, id)];
}

double BatchedModels::sum_lc(std::size_t sample, SectionId id) const {
  return sl_[slot(sample, id)];
}

double BatchedModels::load_capacitance(std::size_t sample, SectionId id) const {
  return ctot_[slot(sample, id)];
}

eed::NodeModel BatchedModels::node(std::size_t sample, SectionId id) const {
  const std::size_t at = slot(sample, id);
  eed::NodeModel nm;
  nm.sum_rc = sr_[at];
  nm.sum_lc = sl_[at];
  if (nm.sum_lc > 0.0) {
    const double root = std::sqrt(nm.sum_lc);
    nm.omega_n = 1.0 / root;
    nm.zeta = nm.sum_rc / (2.0 * root);
  } else {
    nm.omega_n = std::numeric_limits<double>::infinity();
    nm.zeta = std::numeric_limits<double>::infinity();
  }
  return nm;
}

double BatchedModels::delay_50(std::size_t sample, SectionId id) const {
  return eed::delay_50(node(sample, id));
}

std::uint8_t BatchedModels::fault_flags(std::size_t sample) const {
  if (sample >= samples_) throw std::out_of_range("BatchedModels: sample out of range");
  return fault_flags_.empty() ? std::uint8_t{eed::kFaultNone} : fault_flags_[sample];
}

std::vector<std::size_t> BatchedModels::faulted_samples() const {
  std::vector<std::size_t> out;
  out.reserve(fault_count_);
  for (std::size_t s = 0; s < fault_flags_.size(); ++s) {
    if (fault_flags_[s] != 0) out.push_back(s);
  }
  return out;
}

// --- BatchedAnalyzer --------------------------------------------------------

BatchedAnalyzer::BatchedAnalyzer(circuit::FlatTree topology, std::size_t lane_width)
    : topo_(std::move(topology)) {
  if (topo_.empty()) throw std::invalid_argument("BatchedAnalyzer: empty topology");
  if (const util::DiagnosticsReport report = circuit::validate(topo_); !report.is_ok()) {
    throw util::FaultError(report.to_status());
  }
  if (lane_width == 0) {
    lane_width = KernelTuner::instance().analysis_plan(topo_.size(), 0).lane_width;
  }
  if (lane_width != 1 && lane_width != 2 && lane_width != 4 && lane_width != 8) {
    throw std::invalid_argument("BatchedAnalyzer: lane width must be 1, 2, 4, or 8");
  }
  lane_width_ = lane_width;
}

util::Result<BatchedAnalyzer> BatchedAnalyzer::create_checked(circuit::FlatTree topology,
                                                              std::size_t lane_width) {
  if (topology.empty()) {
    return util::Status(util::ErrorCode::kEmptyTree, "BatchedAnalyzer: empty topology");
  }
  if (lane_width != 0 && lane_width != 1 && lane_width != 2 && lane_width != 4 &&
      lane_width != 8) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "BatchedAnalyzer: lane width must be 1, 2, 4, or 8");
  }
  try {
    return BatchedAnalyzer(std::move(topology), lane_width);
  } catch (const util::FaultError& e) {
    return e.status();
  }
}

std::size_t BatchedAnalyzer::value_slot(std::size_t s, std::size_t section) const {
  return s * topo_.size() + section;
}

void BatchedAnalyzer::resize(std::size_t samples) {
  samples_ = samples;
  groups_ = (samples + lane_width_ - 1) / lane_width_;
  const std::size_t n = topo_.size();
  const std::size_t padded = groups_ * lane_width_;
  r_.resize(padded * n);
  l_.resize(padded * n);
  c_.resize(padded * n);
  input_fault_.assign(samples, 0);
  // Nominal values everywhere, padding rows included — padding computes
  // harmless real numbers and is never read back. Sample-major rows make
  // this (and set_sample) a straight memcpy per array.
  for (std::size_t row = 0; row < padded; ++row) {
    std::memcpy(r_.data() + row * n, topo_.resistance().data(), n * sizeof(double));
    std::memcpy(l_.data() + row * n, topo_.inductance().data(), n * sizeof(double));
    std::memcpy(c_.data() + row * n, topo_.capacitance().data(), n * sizeof(double));
  }
}

void BatchedAnalyzer::set_sample(std::size_t s, const double* resistance,
                                 const double* inductance, const double* capacitance) {
  if (s >= samples_) throw std::out_of_range("BatchedAnalyzer::set_sample: sample out of range");
  const std::size_t n = topo_.size();
  // Validate first with a branch-free scan (a throw-per-element form
  // defeats vectorization of both this scan and the copy), then land the
  // values with three contiguous copies — sample s owns row s of each
  // array, so no strided scatter is involved.
  ValueScan scan = scan_values(resistance, n);
  scan.merge(scan_values(inductance, n));
  scan.merge(scan_values(capacitance, n));
  // Injection site: a poisoned value arriving at snapshot fill — folded
  // into the scan verdict before the policy branch, so it flows through
  // the exact guards a genuinely bad input would (throw / clamp / flag).
  const bool inject = util::fault_should_fire(util::FaultSite::kSnapshotNan);
  if (inject) scan.poison += std::numeric_limits<double>::quiet_NaN();
  if (scan.bad() && policy_ == util::FaultPolicy::kThrow) {
    throw util::FaultError(bad_sample_status("BatchedAnalyzer", s, scan.non_finite()));
  }
  const std::size_t base = value_slot(s, 0);
  std::memcpy(r_.data() + base, resistance, n * sizeof(double));
  std::memcpy(l_.data() + base, inductance, n * sizeof(double));
  std::memcpy(c_.data() + base, capacitance, n * sizeof(double));
  if (inject) r_[base] = std::numeric_limits<double>::quiet_NaN();
  input_fault_[s] = 0;
  if (scan.bad()) {
    // Flag-policy slow path: mark the sample; under kClampAndFlag rewrite
    // just-stored invalid entries to 0 so the kernel sees usable numbers.
    input_fault_[s] = eed::kFaultBadInput;
    if (policy_ == util::FaultPolicy::kClampAndFlag) {
      for (double* row : {r_.data() + base, l_.data() + base, c_.data() + base}) {
        for (std::size_t i = 0; i < n; ++i) {
          if (!util::valid_element_value(row[i])) row[i] = 0.0;
        }
      }
    }
  }
}

void BatchedAnalyzer::set_section(std::size_t s, SectionId id, const circuit::SectionValues& v) {
  if (s >= samples_) throw std::out_of_range("BatchedAnalyzer::set_section: sample out of range");
  if (id < 0 || static_cast<std::size_t>(id) >= topo_.size()) {
    throw std::out_of_range("BatchedAnalyzer::set_section: section id out of range");
  }
  circuit::SectionValues stored = v;
  const bool ok = util::valid_element_value(v.resistance) &&
                  util::valid_element_value(v.inductance) &&
                  util::valid_element_value(v.capacitance);
  if (!ok) {
    const bool non_finite = !std::isfinite(v.resistance) || !std::isfinite(v.inductance) ||
                            !std::isfinite(v.capacitance);
    if (policy_ == util::FaultPolicy::kThrow) {
      throw util::FaultError(bad_sample_status("BatchedAnalyzer", s, non_finite));
    }
    input_fault_[s] = eed::kFaultBadInput;
    if (policy_ == util::FaultPolicy::kClampAndFlag) {
      for (double* m : {&stored.resistance, &stored.inductance, &stored.capacitance}) {
        if (!util::valid_element_value(*m)) *m = 0.0;
      }
    }
  }
  const std::size_t at = value_slot(s, static_cast<std::size_t>(id));
  r_[at] = stored.resistance;
  l_[at] = stored.inductance;
  c_[at] = stored.capacitance;
}

void BatchedAnalyzer::set_tile_rows(std::size_t tile_rows) { tile_rows_ = tile_rows; }

BatchedAnalyzer::SweepPlan BatchedAnalyzer::make_plan(const BatchedModels& out,
                                                      bool all_nodes,
                                                      std::size_t samples) const {
  const std::size_t n = topo_.size();
  SweepPlan plan;
  plan.tile_rows = tile_rows_ != 0
                       ? tile_rows_
                       : KernelTuner::instance().analysis_plan(n, samples).tile_rows;
  if (!all_nodes && !out.ids_.empty()) {
    // The path walk wins when the requested root paths touch fewer rows
    // than the full sweep would; level() is exactly each path's length.
    std::size_t walked = 0;
    for (const SectionId id : out.ids_) {
      walked += static_cast<std::size_t>(topo_.level()[static_cast<std::size_t>(id)]);
    }
    plan.use_pathwalk = 2 * walked < n;
  }
  if (!plan.use_pathwalk) {
    const std::size_t rows = out.ids_.size();
    plan.drain_rows.resize(rows);
    if (all_nodes) {
      plan.drain_ids = out.ids_;  // already 0..n-1, row == id
      for (std::size_t i = 0; i < rows; ++i) plan.drain_rows[i] = static_cast<int>(i);
    } else {
      // Sort the output rows by id so tiles drain with one monotone cursor.
      std::vector<int> order(rows);
      for (std::size_t i = 0; i < rows; ++i) order[i] = static_cast<int>(i);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return out.ids_[static_cast<std::size_t>(a)] < out.ids_[static_cast<std::size_t>(b)];
      });
      plan.drain_ids.resize(rows);
      for (std::size_t i = 0; i < rows; ++i) {
        plan.drain_ids[i] = out.ids_[static_cast<std::size_t>(order[i])];
        plan.drain_rows[i] = order[i];
      }
    }
  }
  return plan;
}

void BatchedAnalyzer::sweep_group(const SweepPlan& plan, BatchedModels& out, std::size_t g,
                                  const double* rows_r, const double* rows_l,
                                  const double* rows_c, double* scratch, std::size_t* path,
                                  const std::uint8_t* lane_input) const {
  const std::size_t n = topo_.size();
  const std::size_t w = lane_width_;
  const SectionId* parent = topo_.parent().data();
  double* ctot = scratch;
  double* sr = path != nullptr ? nullptr : scratch + n * w;
  double* sl = path != nullptr ? nullptr : scratch + 2 * n * w;
  DrainCtx ctx;
  ctx.out_sr = out.sr_.data();
  ctx.out_sl = out.sl_.data();
  ctx.out_ctot = out.ctot_.data();
  ctx.padded = out.padded_samples_;
  ctx.g = g;
  ctx.w = w;
  ctx.sr = sr;
  ctx.sl = sl;
  ctx.ctot = ctot;
  ctx.ids = plan.drain_ids.data();
  ctx.rows = plan.drain_rows.data();
  ctx.count = plan.drain_ids.size();
  const SectionId* walk_ids = out.ids_.data();
  const std::size_t walk_count = out.ids_.size();
  switch (w) {
    case 1:
      run_sweep<1>(n, parent, rows_r, rows_l, rows_c, ctot, sr, sl, plan.tile_rows, path,
                   walk_ids, walk_count, &ctx);
      break;
    case 2:
      run_sweep<2>(n, parent, rows_r, rows_l, rows_c, ctot, sr, sl, plan.tile_rows, path,
                   walk_ids, walk_count, &ctx);
      break;
    case 4:
      run_sweep<4>(n, parent, rows_r, rows_l, rows_c, ctot, sr, sl, plan.tile_rows, path,
                   walk_ids, walk_count, &ctx);
      break;
    case 8:
      run_sweep<8>(n, parent, rows_r, rows_l, rows_c, ctot, sr, sl, plan.tile_rows, path,
                   walk_ids, walk_count, &ctx);
      break;
    default:
      throw std::logic_error("BatchedAnalyzer: unsupported lane width");
  }
  flag_group(out, g, ctx.poison, lane_input);
}

BatchedModels BatchedAnalyzer::make_output(const std::vector<SectionId>& ids, bool all_nodes,
                                           std::size_t samples, std::size_t groups) const {
  const std::size_t n = topo_.size();
  BatchedModels out;
  out.samples_ = samples;
  out.padded_samples_ = groups * lane_width_;
  out.row_of_.assign(n, -1);
  if (all_nodes) {
    out.ids_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.ids_[i] = static_cast<SectionId>(i);
      out.row_of_[i] = static_cast<int>(i);
    }
  } else {
    out.ids_ = ids;
    for (std::size_t row = 0; row < ids.size(); ++row) {
      const SectionId id = ids[row];
      if (id < 0 || static_cast<std::size_t>(id) >= n) {
        throw std::out_of_range("BatchedAnalyzer::analyze_nodes: section id out of range");
      }
      out.row_of_[static_cast<std::size_t>(id)] = static_cast<int>(row);
    }
  }
  const std::size_t rows = out.ids_.size();
  out.sr_.resize(rows * out.padded_samples_);
  out.sl_.resize(rows * out.padded_samples_);
  out.ctot_.resize(rows * out.padded_samples_);
  // Zeroed per-sample flag bytes; tasks write disjoint samples, and
  // finalize_faults drops the storage again when nothing faulted.
  out.fault_flags_.assign(samples, 0);
  return out;
}

void BatchedAnalyzer::flag_group(BatchedModels& out, std::size_t g, const double* poison,
                                 const std::uint8_t* lane_input) const {
  const std::size_t w = lane_width_;
  for (std::size_t t = 0; t < w; ++t) {
    const std::size_t s = g * w + t;
    if (s >= out.samples_) break;  // padding lanes carry no verdict
    std::uint8_t flags = lane_input != nullptr
                             ? lane_input[t]
                             : (s < input_fault_.size() ? input_fault_[s] : std::uint8_t{0});
    if (!(poison[t] == 0.0)) flags |= eed::kFaultNonFiniteMoment;
    if (flags != 0) out.fault_flags_[s] = flags;
  }
}

bool BatchedAnalyzer::group_stopped(std::atomic<std::uint8_t>& stop, BatchedModels& out,
                                    std::size_t g) const {
  std::uint8_t code = stop.load(std::memory_order_relaxed);
  if (code == 0) {
    if (!run_.armed()) return false;
    const util::ErrorCode c = run_.stop_code();
    if (c == util::ErrorCode::kOk) return false;
    // First observer latches the code; a racing observer's verdict only
    // differs when deadline and cancel trip in the same instant, and
    // either answer is a truthful stop reason.
    std::uint8_t expected = 0;
    stop.compare_exchange_strong(expected, static_cast<std::uint8_t>(c),
                                 std::memory_order_relaxed);
  }
  // Skipped group: flag its real lanes so the caller can tell exactly
  // which samples never ran. Tasks own disjoint sample ranges, so these
  // writes race with nothing.
  for (std::size_t t = 0; t < lane_width_; ++t) {
    const std::size_t s = g * lane_width_ + t;
    if (s >= out.samples_) break;
    out.fault_flags_[s] |= eed::kFaultNotRun;
  }
  return true;
}

void BatchedAnalyzer::finalize_stop(std::atomic<std::uint8_t>& stop, BatchedModels& out,
                                    const char* entry) const {
  const std::uint8_t code = stop.load(std::memory_order_relaxed);
  if (code == 0) return;
  std::size_t not_run = 0;
  for (const std::uint8_t f : out.fault_flags_) {
    not_run += (f & eed::kFaultNotRun) != 0 ? 1u : 0u;
  }
  out.stop_status_ = util::Status(
      static_cast<util::ErrorCode>(code),
      std::string(entry) + ": stopped early (" + std::to_string(not_run) + " of " +
          std::to_string(out.samples_) + " samples not run)");
  if (policy_ == util::FaultPolicy::kThrow) throw util::FaultError(out.stop_status_);
}

void BatchedAnalyzer::finalize_faults(BatchedModels& out, const char* entry) const {
  std::size_t count = 0;
  for (const std::uint8_t f : out.fault_flags_) count += f != 0 ? 1u : 0u;
  if (count == 0) {
    out.fault_flags_ = {};
    out.fault_count_ = 0;
    return;
  }
  if (policy_ == util::FaultPolicy::kThrow) {
    std::size_t first = 0;
    while (out.fault_flags_[first] == 0) ++first;
    const bool input = (out.fault_flags_[first] & eed::kFaultBadInput) != 0;
    throw util::FaultError(util::Status(
        input ? util::ErrorCode::kInvalidArgument : util::ErrorCode::kNonFiniteMoment,
        std::string(entry) + ": " +
            (input ? "invalid element values" : "non-finite moments") + " in sample " +
            std::to_string(first) + " (" + std::to_string(count) + " faulted of " +
            std::to_string(out.samples_) + " samples)"));
  }
  if (policy_ == util::FaultPolicy::kClampAndFlag) {
    // Rare slow path: clamp the faulted samples' reported moments to the
    // RC-degenerate limit (0). Healthy lanes are never touched.
    const std::size_t rows = out.ids_.size();
    for (std::size_t s = 0; s < out.fault_flags_.size(); ++s) {
      if (out.fault_flags_[s] == 0) continue;
      for (std::size_t row = 0; row < rows; ++row) {
        const std::size_t at = row * out.padded_samples_ + s;
        if (!util::valid_element_value(out.sr_[at])) out.sr_[at] = 0.0;
        if (!util::valid_element_value(out.sl_[at])) out.sl_[at] = 0.0;
        if (!util::valid_element_value(out.ctot_[at])) out.ctot_[at] = 0.0;
      }
    }
  }
  out.fault_count_ = count;
}

BatchedModels BatchedAnalyzer::analyze_impl(const std::vector<SectionId>& ids, bool all_nodes,
                                            BatchAnalyzer* pool) const {
  if (samples_ == 0) throw std::invalid_argument("BatchedAnalyzer: no samples (call resize)");
  const std::size_t n = topo_.size();
  const std::size_t w = lane_width_;
  BatchedModels out = make_output(ids, all_nodes, samples_, groups_);
  const SweepPlan plan = make_plan(out, all_nodes, samples_);

  // One lane-group per task; each task writes a disjoint sample range of
  // every output row (and disjoint flag bytes), so scheduling order cannot
  // affect the results. Scratch comes from the worker's bump arena — one
  // grab per chunk, reused across that chunk's groups, retained across
  // calls — never one allocation per group per pass. Fault policies never
  // throw inside a task: verdicts are recorded per sample and resolved
  // after the join (finalize_faults), so a faulted lane cannot abandon
  // other groups' results mid-flight.
  const std::size_t scratch_doubles = plan.use_pathwalk ? n * w : 3 * n * w;
  std::atomic<std::uint8_t> stop{0};
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    util::Arena& arena = util::thread_arena();
    const util::ArenaScope scope(arena);
    double* scratch = arena.grab<double>(scratch_doubles);
    std::size_t* path = plan.use_pathwalk ? arena.grab<std::size_t>(n) : nullptr;
    for (std::size_t g = begin; g < end; ++g) {
      if (group_stopped(stop, out, g)) continue;
      const double* base_r = r_.data() + g * w * n;
      const double* base_l = l_.data() + g * w * n;
      const double* base_c = c_.data() + g * w * n;
      sweep_group(plan, out, g, base_r, base_l, base_c, scratch, path, nullptr);
    }
  };
  if (pool != nullptr && groups_ > 1) {
    pool->parallel_chunks(groups_, run_range);
  } else {
    run_range(0, groups_);
  }
  finalize_stop(stop, out, "BatchedAnalyzer::analyze");
  finalize_faults(out, "BatchedAnalyzer::analyze");
  return out;
}

BatchedModels BatchedAnalyzer::analyze_stream(std::size_t samples, const SampleFill& fill,
                                              const std::vector<SectionId>& ids,
                                              BatchAnalyzer* pool) const {
  if (samples == 0) throw std::invalid_argument("BatchedAnalyzer: no samples");
  const std::size_t n = topo_.size();
  const std::size_t w = lane_width_;
  const std::size_t groups = (samples + w - 1) / w;
  const bool all_nodes = ids.empty();
  BatchedModels out = make_output(ids, all_nodes, samples, groups);
  const SweepPlan plan = make_plan(out, all_nodes, samples);

  // Per-group working set: w sample-major staging rows (what the fill
  // callback writes) plus the kernel scratch. All of it lives and dies
  // inside one group, so for cache-sized n the values never round-trip
  // through memory — unlike the set_sample path, where the whole S·n
  // fill completes (and is evicted) before the first kernel sweep starts.
  // The kernel reads the staging rows in place; no transposed copy is
  // materialized (the stored path uses the same sample-major rows).
  const auto task = [&](std::size_t g, double* staging, double* scratch,
                        std::size_t* path) {
    double* rows_r = staging;  // w rows of n
    double* rows_l = rows_r + w * n;
    double* rows_c = rows_l + w * n;
    for (std::size_t t = 0; t < w; ++t) {
      const std::size_t s = g * w + t;
      if (s < samples) {
        fill(s, rows_r + t * n, rows_l + t * n, rows_c + t * n);
      } else {
        // Padding lanes replicate the group's first sample: valid values,
        // never read back.
        std::memcpy(rows_r + t * n, rows_r, n * sizeof(double));
        std::memcpy(rows_l + t * n, rows_l, n * sizeof(double));
        std::memcpy(rows_c + t * n, rows_c, n * sizeof(double));
      }
    }
    // Injection site: poison one staged value (group's first lane) after
    // the fill, before validation — the per-lane attribution and policy
    // handling below treat it exactly like a genuinely bad fill.
    if (util::fault_should_fire(util::FaultSite::kSnapshotNan)) {
      rows_r[0] = std::numeric_limits<double>::quiet_NaN();
    }
    std::uint8_t lane_input[8] = {};
    if (scan_values(staging, 3 * w * n).bad()) {
      // Rare slow path: attribute the fault to specific lanes so healthy
      // samples in the same group stay unflagged; under kClampAndFlag the
      // staging values are repaired before the kernel consumes them.
      for (std::size_t t = 0; t < w; ++t) {
        ValueScan lane = scan_values(rows_r + t * n, n);
        lane.merge(scan_values(rows_l + t * n, n));
        lane.merge(scan_values(rows_c + t * n, n));
        if (lane.bad()) lane_input[t] = eed::kFaultBadInput;
      }
      if (policy_ == util::FaultPolicy::kClampAndFlag) {
        for (std::size_t i = 0; i < 3 * w * n; ++i) {
          if (!util::valid_element_value(staging[i])) staging[i] = 0.0;
        }
      }
    }
    sweep_group(plan, out, g, rows_r, rows_l, rows_c, scratch, path, lane_input);
  };
  const std::size_t scratch_doubles = plan.use_pathwalk ? n * w : 3 * n * w;
  std::atomic<std::uint8_t> stop{0};
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    util::Arena& arena = util::thread_arena();
    const util::ArenaScope scope(arena);
    double* staging = arena.grab<double>(3 * w * n);
    double* scratch = arena.grab<double>(scratch_doubles);
    std::size_t* path = plan.use_pathwalk ? arena.grab<std::size_t>(n) : nullptr;
    for (std::size_t g = begin; g < end; ++g) {
      if (group_stopped(stop, out, g)) continue;
      task(g, staging, scratch, path);
    }
  };
  if (pool != nullptr && groups > 1) {
    pool->parallel_chunks(groups, run_range);
  } else {
    run_range(0, groups);
  }
  finalize_stop(stop, out, "BatchedAnalyzer::analyze_stream");
  finalize_faults(out, "BatchedAnalyzer::analyze_stream");
  return out;
}

BatchedModels BatchedAnalyzer::analyze(BatchAnalyzer* pool) const {
  return analyze_impl({}, /*all_nodes=*/true, pool);
}

BatchedModels BatchedAnalyzer::analyze_nodes(const std::vector<SectionId>& ids,
                                             BatchAnalyzer* pool) const {
  return analyze_impl(ids, /*all_nodes=*/false, pool);
}

}  // namespace relmore::engine
