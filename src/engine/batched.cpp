#include "relmore/engine/batched.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "relmore/eed/second_order.hpp"
#include "relmore/engine/batch.hpp"

namespace relmore::engine {

using circuit::SectionId;

/// SIMD-only OpenMP pragma on the fixed-width lane loops (defined from
/// CMake when -fopenmp-simd is available). Without it GCC if-converts the
/// parent-row reads into masked loads and then fails to vectorize the
/// loop; the pragma asserts lane independence (true: lanes are distinct
/// samples) and restores clean vector codegen. Semantics are unchanged —
/// each lane still runs its operations in the scalar association order.
#if defined(RELMORE_HAVE_OPENMP_SIMD)
#define RELMORE_SIMD _Pragma("omp simd")
#else
#define RELMORE_SIMD
#endif

namespace {

/// Upstream prefix of a root section: all lanes zero. Sized for the
/// widest supported lane group.
constexpr double kZeroPrefix[8] = {};

/// min(0, min(buf[0..count))) with eight explicit accumulators. A serial
/// `lowest = std::min(lowest, ...)` scan chains at the min instruction's
/// latency and dominates the whole batched pipeline; eight independent
/// chains keep the FP pipe saturated whether or not the loop vectorizes
/// (measured ~3x over the serial form even in scalar codegen).
double lowest_of(const double* buf, std::size_t count) {
  double m[8] = {};
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    RELMORE_SIMD
    for (std::size_t j = 0; j < 8; ++j) m[j] = std::min(m[j], buf[i + j]);
  }
  double lowest = 0.0;
  for (; i < count; ++i) lowest = std::min(lowest, buf[i]);
  for (double v : m) lowest = std::min(lowest, v);
  return lowest;
}

/// The two-pass kernel over one lane-group. `r`/`l`/`c` point at the
/// group's AoSoA values, `ctot`/`sr`/`sl` at n*W scratch (or output)
/// doubles. Lane t runs exactly the scalar analysis of sample
/// group*W + t: same operations, same association order, so the lanes are
/// bitwise-equal to S independent scalar passes. W is a compile-time
/// constant so the inner lane loops have a fixed trip count and
/// autovectorize at -O3.
/// The two passes over one lane-group, parameterized over how sample
/// values are addressed: `*_at(i, t)` yields lane t's value of section i.
/// The stored path reads the AoSoA arrays (i*W + t); the streaming path
/// reads sample-major staging rows (t*n + i) directly, skipping a
/// transpose. Both run the identical operations in identical order, so
/// every lane is bitwise-equal to a scalar analysis of its sample.
///
/// The lane loops stage their cross-row reads through W-wide locals:
/// `up`/`mine` (and `sr + at`/`up_sr`) point into the same array, and
/// without the copy the compiler must assume they overlap and serialize
/// the loop. Rows never overlap (parent id != own id), so the staging is
/// free of semantics — it exists purely to unblock vectorization.
template <std::size_t W, typename ValueAt>
void run_group_passes(std::size_t n, const SectionId* parent, const ValueAt& r_at,
                      const ValueAt& l_at, const ValueAt& c_at, double* ctot, double* sr,
                      double* sl) {
  // Upward pass (Fig. 17): subtree capacitance, one reverse id scan.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t at = i * W;
    RELMORE_SIMD
    for (std::size_t t = 0; t < W; ++t) ctot[at + t] = c_at(i, t);
  }
  for (std::size_t i = n; i-- > 0;) {
    const SectionId p = parent[i];
    if (p != circuit::kInput) {
      double* up = ctot + static_cast<std::size_t>(p) * W;
      const double* mine = ctot + i * W;
      RELMORE_SIMD
      for (std::size_t t = 0; t < W; ++t) up[t] += mine[t];
    }
  }
  // Downward pass (Fig. 18): prefix sums along each root path.
  for (std::size_t i = 0; i < n; ++i) {
    const SectionId p = parent[i];
    const double* up_sr = p == circuit::kInput ? kZeroPrefix : sr + static_cast<std::size_t>(p) * W;
    const double* up_sl = p == circuit::kInput ? kZeroPrefix : sl + static_cast<std::size_t>(p) * W;
    const std::size_t at = i * W;
    RELMORE_SIMD
    for (std::size_t t = 0; t < W; ++t) sr[at + t] = up_sr[t] + r_at(i, t) * ctot[at + t];
    RELMORE_SIMD
    for (std::size_t t = 0; t < W; ++t) sl[at + t] = up_sl[t] + l_at(i, t) * ctot[at + t];
  }
}

/// Stored-path kernel: values in AoSoA order.
template <std::size_t W>
void run_group_kernel(std::size_t n, const SectionId* parent, const double* r, const double* l,
                      const double* c, double* ctot, double* sr, double* sl) {
  const auto at = [](const double* v) {
    return [v](std::size_t i, std::size_t t) { return v[i * W + t]; };
  };
  run_group_passes<W>(n, parent, at(r), at(l), at(c), ctot, sr, sl);
}

/// Streaming-path kernel: values in W sample-major rows of length n.
template <std::size_t W>
void run_group_rows(std::size_t n, const SectionId* parent, const double* rows_r,
                    const double* rows_l, const double* rows_c, double* ctot, double* sr,
                    double* sl) {
  const auto at = [n](const double* v) {
    return [v, n](std::size_t i, std::size_t t) { return v[t * n + i]; };
  };
  run_group_passes<W>(n, parent, at(rows_r), at(rows_l), at(rows_c), ctot, sr, sl);
}

void check_values(double resistance, double inductance, double capacitance) {
  if (resistance < 0.0 || inductance < 0.0 || capacitance < 0.0) {
    throw std::invalid_argument("BatchedAnalyzer: negative element value");
  }
}

}  // namespace

// --- BatchedModels ----------------------------------------------------------

std::size_t BatchedModels::slot(std::size_t sample, SectionId id) const {
  if (sample >= samples_) throw std::out_of_range("BatchedModels: sample out of range");
  if (id < 0 || static_cast<std::size_t>(id) >= row_of_.size() ||
      row_of_[static_cast<std::size_t>(id)] < 0) {
    throw std::out_of_range("BatchedModels: node not covered by this analysis");
  }
  return static_cast<std::size_t>(row_of_[static_cast<std::size_t>(id)]) * padded_samples_ +
         sample;
}

double BatchedModels::sum_rc(std::size_t sample, SectionId id) const {
  return sr_[slot(sample, id)];
}

double BatchedModels::sum_lc(std::size_t sample, SectionId id) const {
  return sl_[slot(sample, id)];
}

double BatchedModels::load_capacitance(std::size_t sample, SectionId id) const {
  return ctot_[slot(sample, id)];
}

eed::NodeModel BatchedModels::node(std::size_t sample, SectionId id) const {
  const std::size_t at = slot(sample, id);
  eed::NodeModel nm;
  nm.sum_rc = sr_[at];
  nm.sum_lc = sl_[at];
  if (nm.sum_lc > 0.0) {
    const double root = std::sqrt(nm.sum_lc);
    nm.omega_n = 1.0 / root;
    nm.zeta = nm.sum_rc / (2.0 * root);
  } else {
    nm.omega_n = std::numeric_limits<double>::infinity();
    nm.zeta = std::numeric_limits<double>::infinity();
  }
  return nm;
}

double BatchedModels::delay_50(std::size_t sample, SectionId id) const {
  return eed::delay_50(node(sample, id));
}

// --- BatchedAnalyzer --------------------------------------------------------

BatchedAnalyzer::BatchedAnalyzer(circuit::FlatTree topology, std::size_t lane_width)
    : topo_(std::move(topology)) {
  if (topo_.empty()) throw std::invalid_argument("BatchedAnalyzer: empty topology");
  if (lane_width == 0) lane_width = kDefaultLaneWidth;
  if (lane_width != 1 && lane_width != 2 && lane_width != 4 && lane_width != 8) {
    throw std::invalid_argument("BatchedAnalyzer: lane width must be 1, 2, 4, or 8");
  }
  lane_width_ = lane_width;
}

std::size_t BatchedAnalyzer::value_slot(std::size_t s, std::size_t section) const {
  const std::size_t group = s / lane_width_;
  const std::size_t lane = s % lane_width_;
  return (group * topo_.size() + section) * lane_width_ + lane;
}

void BatchedAnalyzer::resize(std::size_t samples) {
  samples_ = samples;
  groups_ = (samples + lane_width_ - 1) / lane_width_;
  const std::size_t n = topo_.size();
  const std::size_t total = groups_ * n * lane_width_;
  r_.resize(total);
  l_.resize(total);
  c_.resize(total);
  // Nominal values everywhere, padding lanes included — padding computes
  // harmless real numbers and is never read back.
  for (std::size_t g = 0; g < groups_; ++g) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t at = (g * n + i) * lane_width_;
      for (std::size_t t = 0; t < lane_width_; ++t) {
        r_[at + t] = topo_.resistance()[i];
        l_[at + t] = topo_.inductance()[i];
        c_[at + t] = topo_.capacitance()[i];
      }
    }
  }
}

void BatchedAnalyzer::set_sample(std::size_t s, const double* resistance,
                                 const double* inductance, const double* capacitance) {
  if (s >= samples_) throw std::out_of_range("BatchedAnalyzer::set_sample: sample out of range");
  const std::size_t n = topo_.size();
  // Validate first with a branch-free min-reduction (a throw-per-element
  // form defeats vectorization of both this scan and the copy loops), then
  // copy with the slot arithmetic hoisted out of the loop: slots of one
  // sample differ only by a fixed stride of lane_width_.
  const double lowest = std::min(lowest_of(resistance, n),
                                 std::min(lowest_of(inductance, n), lowest_of(capacitance, n)));
  if (lowest < 0.0) throw std::invalid_argument("BatchedAnalyzer: negative element value");
  const std::size_t w = lane_width_;
  const std::size_t base = value_slot(s, 0);
  for (std::size_t i = 0; i < n; ++i) r_[base + i * w] = resistance[i];
  for (std::size_t i = 0; i < n; ++i) l_[base + i * w] = inductance[i];
  for (std::size_t i = 0; i < n; ++i) c_[base + i * w] = capacitance[i];
}

void BatchedAnalyzer::set_section(std::size_t s, SectionId id, const circuit::SectionValues& v) {
  if (s >= samples_) throw std::out_of_range("BatchedAnalyzer::set_section: sample out of range");
  if (id < 0 || static_cast<std::size_t>(id) >= topo_.size()) {
    throw std::out_of_range("BatchedAnalyzer::set_section: section id out of range");
  }
  check_values(v.resistance, v.inductance, v.capacitance);
  const std::size_t at = value_slot(s, static_cast<std::size_t>(id));
  r_[at] = v.resistance;
  l_[at] = v.inductance;
  c_[at] = v.capacitance;
}

void BatchedAnalyzer::run_group(std::size_t group, double* ctot, double* sr, double* sl) const {
  const std::size_t n = topo_.size();
  const SectionId* parent = topo_.parent().data();
  const std::size_t base = group * n * lane_width_;
  const double* r = r_.data() + base;
  const double* l = l_.data() + base;
  const double* c = c_.data() + base;
  switch (lane_width_) {
    case 1: run_group_kernel<1>(n, parent, r, l, c, ctot, sr, sl); return;
    case 2: run_group_kernel<2>(n, parent, r, l, c, ctot, sr, sl); return;
    case 4: run_group_kernel<4>(n, parent, r, l, c, ctot, sr, sl); return;
    case 8: run_group_kernel<8>(n, parent, r, l, c, ctot, sr, sl); return;
    default: throw std::logic_error("BatchedAnalyzer: unsupported lane width");
  }
}

BatchedModels BatchedAnalyzer::make_output(const std::vector<SectionId>& ids, bool all_nodes,
                                           std::size_t samples, std::size_t groups) const {
  const std::size_t n = topo_.size();
  BatchedModels out;
  out.samples_ = samples;
  out.padded_samples_ = groups * lane_width_;
  out.row_of_.assign(n, -1);
  if (all_nodes) {
    out.ids_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.ids_[i] = static_cast<SectionId>(i);
      out.row_of_[i] = static_cast<int>(i);
    }
  } else {
    out.ids_ = ids;
    for (std::size_t row = 0; row < ids.size(); ++row) {
      const SectionId id = ids[row];
      if (id < 0 || static_cast<std::size_t>(id) >= n) {
        throw std::out_of_range("BatchedAnalyzer::analyze_nodes: section id out of range");
      }
      out.row_of_[static_cast<std::size_t>(id)] = static_cast<int>(row);
    }
  }
  const std::size_t rows = out.ids_.size();
  out.sr_.resize(rows * out.padded_samples_);
  out.sl_.resize(rows * out.padded_samples_);
  out.ctot_.resize(rows * out.padded_samples_);
  return out;
}

BatchedModels BatchedAnalyzer::analyze_impl(const std::vector<SectionId>& ids, bool all_nodes,
                                            BatchAnalyzer* pool) const {
  if (samples_ == 0) throw std::invalid_argument("BatchedAnalyzer: no samples (call resize)");
  const std::size_t n = topo_.size();
  const std::size_t w = lane_width_;
  BatchedModels out = make_output(ids, all_nodes, samples_, groups_);
  const std::size_t rows = out.ids_.size();

  // One lane-group per task; each task writes a disjoint sample range of
  // every output row, so scheduling order cannot affect the results.
  // Scratch lives in the caller's frame (serial) or one allocation per
  // task invocation (pooled) — never one allocation per group per pass.
  const auto run_into = [&](std::size_t g, double* ctot, double* sr, double* sl) {
    run_group(g, ctot, sr, sl);
    for (std::size_t row = 0; row < rows; ++row) {
      const auto i = static_cast<std::size_t>(out.ids_[row]);
      const std::size_t dst = row * out.padded_samples_ + g * w;
      std::memcpy(out.sr_.data() + dst, sr + i * w, w * sizeof(double));
      std::memcpy(out.sl_.data() + dst, sl + i * w, w * sizeof(double));
      std::memcpy(out.ctot_.data() + dst, ctot + i * w, w * sizeof(double));
    }
  };
  if (pool != nullptr && groups_ > 1) {
    pool->parallel_for(groups_, [&](std::size_t g) {
      std::vector<double> scratch(3 * n * w);
      run_into(g, scratch.data(), scratch.data() + n * w, scratch.data() + 2 * n * w);
    });
  } else {
    std::vector<double> scratch(3 * n * w);
    for (std::size_t g = 0; g < groups_; ++g) {
      run_into(g, scratch.data(), scratch.data() + n * w, scratch.data() + 2 * n * w);
    }
  }
  return out;
}

BatchedModels BatchedAnalyzer::analyze_stream(std::size_t samples, const SampleFill& fill,
                                              const std::vector<SectionId>& ids,
                                              BatchAnalyzer* pool) const {
  if (samples == 0) throw std::invalid_argument("BatchedAnalyzer: no samples");
  const std::size_t n = topo_.size();
  const std::size_t w = lane_width_;
  const std::size_t groups = (samples + w - 1) / w;
  BatchedModels out = make_output(ids, /*all_nodes=*/ids.empty(), samples, groups);
  const std::size_t rows = out.ids_.size();
  const SectionId* parent = topo_.parent().data();

  // Per-group working set: w sample-major staging rows (what the fill
  // callback writes) plus the kernel scratch. All of it lives and dies
  // inside one group, so for cache-sized n the values never round-trip
  // through memory — unlike the set_sample path, where the whole S·n
  // fill completes (and is evicted) before the first kernel sweep starts.
  // The kernel reads the staging rows in place (run_group_rows); no
  // transposed copy is materialized.
  const auto task = [&](std::size_t g, std::vector<double>& buf) {
    double* rows_r = buf.data();              // w rows of n: staging
    double* rows_l = rows_r + w * n;
    double* rows_c = rows_l + w * n;
    double* scratch = rows_c + w * n;         // ctot/sr/sl, n*w each
    for (std::size_t t = 0; t < w; ++t) {
      const std::size_t s = g * w + t;
      if (s < samples) {
        fill(s, rows_r + t * n, rows_l + t * n, rows_c + t * n);
      } else {
        // Padding lanes replicate the group's first sample: valid values,
        // never read back.
        std::memcpy(rows_r + t * n, rows_r, n * sizeof(double));
        std::memcpy(rows_l + t * n, rows_l, n * sizeof(double));
        std::memcpy(rows_c + t * n, rows_c, n * sizeof(double));
      }
    }
    if (lowest_of(buf.data(), 3 * w * n) < 0.0) {
      throw std::invalid_argument("BatchedAnalyzer: negative element value from fill");
    }
    double* ctot = scratch;
    double* sr = scratch + n * w;
    double* sl = scratch + 2 * n * w;
    switch (w) {
      case 1: run_group_rows<1>(n, parent, rows_r, rows_l, rows_c, ctot, sr, sl); break;
      case 2: run_group_rows<2>(n, parent, rows_r, rows_l, rows_c, ctot, sr, sl); break;
      case 4: run_group_rows<4>(n, parent, rows_r, rows_l, rows_c, ctot, sr, sl); break;
      case 8: run_group_rows<8>(n, parent, rows_r, rows_l, rows_c, ctot, sr, sl); break;
      default: throw std::logic_error("BatchedAnalyzer: unsupported lane width");
    }
    for (std::size_t row = 0; row < rows; ++row) {
      const auto i = static_cast<std::size_t>(out.ids_[row]);
      const std::size_t dst = row * out.padded_samples_ + g * w;
      std::memcpy(out.sr_.data() + dst, sr + i * w, w * sizeof(double));
      std::memcpy(out.sl_.data() + dst, sl + i * w, w * sizeof(double));
      std::memcpy(out.ctot_.data() + dst, ctot + i * w, w * sizeof(double));
    }
  };
  const std::size_t buf_size = 6 * n * w;  // 3 staging + 3 scratch
  if (pool != nullptr && groups > 1) {
    pool->parallel_chunks(groups, [&](std::size_t begin, std::size_t end) {
      std::vector<double> buf(buf_size);
      for (std::size_t g = begin; g < end; ++g) task(g, buf);
    });
  } else {
    std::vector<double> buf(buf_size);
    for (std::size_t g = 0; g < groups; ++g) task(g, buf);
  }
  return out;
}

BatchedModels BatchedAnalyzer::analyze(BatchAnalyzer* pool) const {
  return analyze_impl({}, /*all_nodes=*/true, pool);
}

BatchedModels BatchedAnalyzer::analyze_nodes(const std::vector<SectionId>& ids,
                                             BatchAnalyzer* pool) const {
  return analyze_impl(ids, /*all_nodes=*/false, pool);
}

}  // namespace relmore::engine
