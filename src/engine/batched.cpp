#include "relmore/engine/batched.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "relmore/circuit/validate.hpp"
#include "relmore/eed/second_order.hpp"
#include "relmore/engine/batch.hpp"

namespace relmore::engine {

using circuit::SectionId;

/// SIMD-only OpenMP pragma on the fixed-width lane loops (defined from
/// CMake when -fopenmp-simd is available). Without it GCC if-converts the
/// parent-row reads into masked loads and then fails to vectorize the
/// loop; the pragma asserts lane independence (true: lanes are distinct
/// samples) and restores clean vector codegen. Semantics are unchanged —
/// each lane still runs its operations in the scalar association order.
#if defined(RELMORE_HAVE_OPENMP_SIMD)
#define RELMORE_SIMD _Pragma("omp simd")
#else
#define RELMORE_SIMD
#endif

namespace {

/// Upstream prefix of a root section: all lanes zero. Sized for the
/// widest supported lane group.
constexpr double kZeroPrefix[8] = {};

/// Verdict of one branch-free validity scan over a value buffer.
struct ValueScan {
  double lowest = 0.0;  ///< min(0, values) — negative iff any value is
  double poison = 0.0;  ///< NaN iff any value is NaN or ±Inf, else 0
  [[nodiscard]] bool non_finite() const { return !(poison == 0.0); }
  [[nodiscard]] bool bad() const { return lowest < 0.0 || non_finite(); }
  void merge(const ValueScan& o) {
    lowest = std::min(lowest, o.lowest);
    poison += o.poison;
  }
};

/// Validity scan with eight explicit accumulator pairs. A serial
/// `lowest = std::min(lowest, ...)` scan chains at the min instruction's
/// latency and dominates the whole batched pipeline; eight independent
/// chains keep the FP pipe saturated whether or not the loop vectorizes
/// (measured ~3x over the serial form even in scalar codegen). The min
/// alone has a NaN hole — min(x, NaN) is x — so a poison accumulator
/// rides along: v * 0.0 is 0 for every finite v and NaN for NaN/±Inf,
/// turning "any non-finite value?" into one comparison at the end.
ValueScan scan_values(const double* buf, std::size_t count) {
  double m[8] = {};
  double p[8] = {};
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    RELMORE_SIMD
    for (std::size_t j = 0; j < 8; ++j) {
      m[j] = std::min(m[j], buf[i + j]);
      p[j] += buf[i + j] * 0.0;
    }
  }
  ValueScan out;
  for (; i < count; ++i) {
    out.lowest = std::min(out.lowest, buf[i]);
    out.poison += buf[i] * 0.0;
  }
  for (const double v : m) out.lowest = std::min(out.lowest, v);
  for (const double v : p) out.poison += v;
  return out;
}

/// Status for a rejected sample fill, preserving the historical
/// "negative element value" wording the original contract used.
util::Status bad_sample_status(const char* entry, std::size_t sample, bool non_finite) {
  return util::Status(
      non_finite ? util::ErrorCode::kNonFiniteValue : util::ErrorCode::kNegativeValue,
      std::string(entry) + (non_finite ? ": non-finite" : ": negative") +
          " element value in sample " + std::to_string(sample));
}

/// The two-pass kernel over one lane-group. `r`/`l`/`c` point at the
/// group's AoSoA values, `ctot`/`sr`/`sl` at n*W scratch (or output)
/// doubles. Lane t runs exactly the scalar analysis of sample
/// group*W + t: same operations, same association order, so the lanes are
/// bitwise-equal to S independent scalar passes. W is a compile-time
/// constant so the inner lane loops have a fixed trip count and
/// autovectorize at -O3.
/// The two passes over one lane-group, parameterized over how sample
/// values are addressed: `*_at(i, t)` yields lane t's value of section i.
/// The stored path reads the AoSoA arrays (i*W + t); the streaming path
/// reads sample-major staging rows (t*n + i) directly, skipping a
/// transpose. Both run the identical operations in identical order, so
/// every lane is bitwise-equal to a scalar analysis of its sample.
///
/// The lane loops stage their cross-row reads through W-wide locals:
/// `up`/`mine` (and `sr + at`/`up_sr`) point into the same array, and
/// without the copy the compiler must assume they overlap and serialize
/// the loop. Rows never overlap (parent id != own id), so the staging is
/// free of semantics — it exists purely to unblock vectorization.
template <std::size_t W, typename ValueAt>
void run_group_passes(std::size_t n, const SectionId* parent, const ValueAt& r_at,
                      const ValueAt& l_at, const ValueAt& c_at, double* ctot, double* sr,
                      double* sl) {
  // relmore-lint: begin-hot-loop(batched-two-pass)
  // Upward pass (Fig. 17): subtree capacitance, one reverse id scan.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t at = i * W;
    RELMORE_SIMD
    for (std::size_t t = 0; t < W; ++t) ctot[at + t] = c_at(i, t);
  }
  for (std::size_t i = n; i-- > 0;) {
    const SectionId p = parent[i];
    if (p != circuit::kInput) {
      double* up = ctot + static_cast<std::size_t>(p) * W;
      const double* mine = ctot + i * W;
      RELMORE_SIMD
      for (std::size_t t = 0; t < W; ++t) up[t] += mine[t];
    }
  }
  // Downward pass (Fig. 18): prefix sums along each root path.
  for (std::size_t i = 0; i < n; ++i) {
    const SectionId p = parent[i];
    const double* up_sr = p == circuit::kInput ? kZeroPrefix : sr + static_cast<std::size_t>(p) * W;
    const double* up_sl = p == circuit::kInput ? kZeroPrefix : sl + static_cast<std::size_t>(p) * W;
    const std::size_t at = i * W;
    RELMORE_SIMD
    for (std::size_t t = 0; t < W; ++t) sr[at + t] = up_sr[t] + r_at(i, t) * ctot[at + t];
    RELMORE_SIMD
    for (std::size_t t = 0; t < W; ++t) sl[at + t] = up_sl[t] + l_at(i, t) * ctot[at + t];
  }
  // relmore-lint: end-hot-loop
}

/// Stored-path kernel: values in AoSoA order.
template <std::size_t W>
void run_group_kernel(std::size_t n, const SectionId* parent, const double* r, const double* l,
                      const double* c, double* ctot, double* sr, double* sl) {
  const auto at = [](const double* v) {
    return [v](std::size_t i, std::size_t t) { return v[i * W + t]; };
  };
  run_group_passes<W>(n, parent, at(r), at(l), at(c), ctot, sr, sl);
}

/// Streaming-path kernel: values in W sample-major rows of length n.
template <std::size_t W>
void run_group_rows(std::size_t n, const SectionId* parent, const double* rows_r,
                    const double* rows_l, const double* rows_c, double* ctot, double* sr,
                    double* sl) {
  const auto at = [n](const double* v) {
    return [v, n](std::size_t i, std::size_t t) { return v[t * n + i]; };
  };
  run_group_passes<W>(n, parent, at(rows_r), at(rows_l), at(rows_c), ctot, sr, sl);
}

}  // namespace

// --- BatchedModels ----------------------------------------------------------

std::size_t BatchedModels::slot(std::size_t sample, SectionId id) const {
  if (sample >= samples_) throw std::out_of_range("BatchedModels: sample out of range");
  if (id < 0 || static_cast<std::size_t>(id) >= row_of_.size() ||
      row_of_[static_cast<std::size_t>(id)] < 0) {
    throw std::out_of_range("BatchedModels: node not covered by this analysis");
  }
  return static_cast<std::size_t>(row_of_[static_cast<std::size_t>(id)]) * padded_samples_ +
         sample;
}

double BatchedModels::sum_rc(std::size_t sample, SectionId id) const {
  return sr_[slot(sample, id)];
}

double BatchedModels::sum_lc(std::size_t sample, SectionId id) const {
  return sl_[slot(sample, id)];
}

double BatchedModels::load_capacitance(std::size_t sample, SectionId id) const {
  return ctot_[slot(sample, id)];
}

eed::NodeModel BatchedModels::node(std::size_t sample, SectionId id) const {
  const std::size_t at = slot(sample, id);
  eed::NodeModel nm;
  nm.sum_rc = sr_[at];
  nm.sum_lc = sl_[at];
  if (nm.sum_lc > 0.0) {
    const double root = std::sqrt(nm.sum_lc);
    nm.omega_n = 1.0 / root;
    nm.zeta = nm.sum_rc / (2.0 * root);
  } else {
    nm.omega_n = std::numeric_limits<double>::infinity();
    nm.zeta = std::numeric_limits<double>::infinity();
  }
  return nm;
}

double BatchedModels::delay_50(std::size_t sample, SectionId id) const {
  return eed::delay_50(node(sample, id));
}

std::uint8_t BatchedModels::fault_flags(std::size_t sample) const {
  if (sample >= samples_) throw std::out_of_range("BatchedModels: sample out of range");
  return fault_flags_.empty() ? std::uint8_t{eed::kFaultNone} : fault_flags_[sample];
}

std::vector<std::size_t> BatchedModels::faulted_samples() const {
  std::vector<std::size_t> out;
  out.reserve(fault_count_);
  for (std::size_t s = 0; s < fault_flags_.size(); ++s) {
    if (fault_flags_[s] != 0) out.push_back(s);
  }
  return out;
}

// --- BatchedAnalyzer --------------------------------------------------------

BatchedAnalyzer::BatchedAnalyzer(circuit::FlatTree topology, std::size_t lane_width)
    : topo_(std::move(topology)) {
  if (topo_.empty()) throw std::invalid_argument("BatchedAnalyzer: empty topology");
  if (const util::DiagnosticsReport report = circuit::validate(topo_); !report.is_ok()) {
    throw util::FaultError(report.to_status());
  }
  if (lane_width == 0) lane_width = kDefaultLaneWidth;
  if (lane_width != 1 && lane_width != 2 && lane_width != 4 && lane_width != 8) {
    throw std::invalid_argument("BatchedAnalyzer: lane width must be 1, 2, 4, or 8");
  }
  lane_width_ = lane_width;
}

util::Result<BatchedAnalyzer> BatchedAnalyzer::create_checked(circuit::FlatTree topology,
                                                              std::size_t lane_width) {
  if (topology.empty()) {
    return util::Status(util::ErrorCode::kEmptyTree, "BatchedAnalyzer: empty topology");
  }
  if (lane_width != 0 && lane_width != 1 && lane_width != 2 && lane_width != 4 &&
      lane_width != 8) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "BatchedAnalyzer: lane width must be 1, 2, 4, or 8");
  }
  try {
    return BatchedAnalyzer(std::move(topology), lane_width);
  } catch (const util::FaultError& e) {
    return e.status();
  }
}

std::size_t BatchedAnalyzer::value_slot(std::size_t s, std::size_t section) const {
  const std::size_t group = s / lane_width_;
  const std::size_t lane = s % lane_width_;
  return (group * topo_.size() + section) * lane_width_ + lane;
}

void BatchedAnalyzer::resize(std::size_t samples) {
  samples_ = samples;
  groups_ = (samples + lane_width_ - 1) / lane_width_;
  const std::size_t n = topo_.size();
  const std::size_t total = groups_ * n * lane_width_;
  r_.resize(total);
  l_.resize(total);
  c_.resize(total);
  input_fault_.assign(samples, 0);
  // Nominal values everywhere, padding lanes included — padding computes
  // harmless real numbers and is never read back.
  for (std::size_t g = 0; g < groups_; ++g) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t at = (g * n + i) * lane_width_;
      for (std::size_t t = 0; t < lane_width_; ++t) {
        r_[at + t] = topo_.resistance()[i];
        l_[at + t] = topo_.inductance()[i];
        c_[at + t] = topo_.capacitance()[i];
      }
    }
  }
}

void BatchedAnalyzer::set_sample(std::size_t s, const double* resistance,
                                 const double* inductance, const double* capacitance) {
  if (s >= samples_) throw std::out_of_range("BatchedAnalyzer::set_sample: sample out of range");
  const std::size_t n = topo_.size();
  // Validate first with a branch-free scan (a throw-per-element form
  // defeats vectorization of both this scan and the copy loops), then
  // copy with the slot arithmetic hoisted out of the loop: slots of one
  // sample differ only by a fixed stride of lane_width_.
  ValueScan scan = scan_values(resistance, n);
  scan.merge(scan_values(inductance, n));
  scan.merge(scan_values(capacitance, n));
  if (scan.bad() && policy_ == util::FaultPolicy::kThrow) {
    throw util::FaultError(bad_sample_status("BatchedAnalyzer", s, scan.non_finite()));
  }
  const std::size_t w = lane_width_;
  const std::size_t base = value_slot(s, 0);
  for (std::size_t i = 0; i < n; ++i) r_[base + i * w] = resistance[i];
  for (std::size_t i = 0; i < n; ++i) l_[base + i * w] = inductance[i];
  for (std::size_t i = 0; i < n; ++i) c_[base + i * w] = capacitance[i];
  input_fault_[s] = 0;
  if (scan.bad()) {
    // Flag-policy slow path: mark the sample; under kClampAndFlag rewrite
    // just-stored invalid entries to 0 so the kernel sees usable numbers.
    input_fault_[s] = eed::kFaultBadInput;
    if (policy_ == util::FaultPolicy::kClampAndFlag) {
      for (std::size_t i = 0; i < n; ++i) {
        for (double* slot : {&r_[base + i * w], &l_[base + i * w], &c_[base + i * w]}) {
          if (!util::valid_element_value(*slot)) *slot = 0.0;
        }
      }
    }
  }
}

void BatchedAnalyzer::set_section(std::size_t s, SectionId id, const circuit::SectionValues& v) {
  if (s >= samples_) throw std::out_of_range("BatchedAnalyzer::set_section: sample out of range");
  if (id < 0 || static_cast<std::size_t>(id) >= topo_.size()) {
    throw std::out_of_range("BatchedAnalyzer::set_section: section id out of range");
  }
  circuit::SectionValues stored = v;
  const bool ok = util::valid_element_value(v.resistance) &&
                  util::valid_element_value(v.inductance) &&
                  util::valid_element_value(v.capacitance);
  if (!ok) {
    const bool non_finite = !std::isfinite(v.resistance) || !std::isfinite(v.inductance) ||
                            !std::isfinite(v.capacitance);
    if (policy_ == util::FaultPolicy::kThrow) {
      throw util::FaultError(bad_sample_status("BatchedAnalyzer", s, non_finite));
    }
    input_fault_[s] = eed::kFaultBadInput;
    if (policy_ == util::FaultPolicy::kClampAndFlag) {
      for (double* m : {&stored.resistance, &stored.inductance, &stored.capacitance}) {
        if (!util::valid_element_value(*m)) *m = 0.0;
      }
    }
  }
  const std::size_t at = value_slot(s, static_cast<std::size_t>(id));
  r_[at] = stored.resistance;
  l_[at] = stored.inductance;
  c_[at] = stored.capacitance;
}

void BatchedAnalyzer::run_group(std::size_t group, double* ctot, double* sr, double* sl) const {
  const std::size_t n = topo_.size();
  const SectionId* parent = topo_.parent().data();
  const std::size_t base = group * n * lane_width_;
  const double* r = r_.data() + base;
  const double* l = l_.data() + base;
  const double* c = c_.data() + base;
  switch (lane_width_) {
    case 1: run_group_kernel<1>(n, parent, r, l, c, ctot, sr, sl); return;
    case 2: run_group_kernel<2>(n, parent, r, l, c, ctot, sr, sl); return;
    case 4: run_group_kernel<4>(n, parent, r, l, c, ctot, sr, sl); return;
    case 8: run_group_kernel<8>(n, parent, r, l, c, ctot, sr, sl); return;
    default: throw std::logic_error("BatchedAnalyzer: unsupported lane width");
  }
}

BatchedModels BatchedAnalyzer::make_output(const std::vector<SectionId>& ids, bool all_nodes,
                                           std::size_t samples, std::size_t groups) const {
  const std::size_t n = topo_.size();
  BatchedModels out;
  out.samples_ = samples;
  out.padded_samples_ = groups * lane_width_;
  out.row_of_.assign(n, -1);
  if (all_nodes) {
    out.ids_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.ids_[i] = static_cast<SectionId>(i);
      out.row_of_[i] = static_cast<int>(i);
    }
  } else {
    out.ids_ = ids;
    for (std::size_t row = 0; row < ids.size(); ++row) {
      const SectionId id = ids[row];
      if (id < 0 || static_cast<std::size_t>(id) >= n) {
        throw std::out_of_range("BatchedAnalyzer::analyze_nodes: section id out of range");
      }
      out.row_of_[static_cast<std::size_t>(id)] = static_cast<int>(row);
    }
  }
  const std::size_t rows = out.ids_.size();
  out.sr_.resize(rows * out.padded_samples_);
  out.sl_.resize(rows * out.padded_samples_);
  out.ctot_.resize(rows * out.padded_samples_);
  // Zeroed per-sample flag bytes; tasks write disjoint samples, and
  // finalize_faults drops the storage again when nothing faulted.
  out.fault_flags_.assign(samples, 0);
  return out;
}

void BatchedAnalyzer::copy_group(BatchedModels& out, std::size_t g, const double* ctot,
                                 const double* sr, const double* sl, double* poison) const {
  const std::size_t w = lane_width_;
  const std::size_t rows = out.ids_.size();
  for (std::size_t row = 0; row < rows; ++row) {
    const auto i = static_cast<std::size_t>(out.ids_[row]);
    const std::size_t dst = row * out.padded_samples_ + g * w;
    std::memcpy(out.sr_.data() + dst, sr + i * w, w * sizeof(double));
    std::memcpy(out.sl_.data() + dst, sl + i * w, w * sizeof(double));
    std::memcpy(out.ctot_.data() + dst, ctot + i * w, w * sizeof(double));
    // Rescan the freshly copied (cache-hot) values with the poison trick:
    // each term is 0 for a finite value and NaN otherwise, so after the
    // sweep poison[t] answers "did lane t report any non-finite moment?"
    // without branching. Per-term multiplies — summing first could
    // overflow to Inf on legitimately huge finite moments.
    const double* a = sr + i * w;
    const double* b = sl + i * w;
    const double* d = ctot + i * w;
    RELMORE_SIMD
    for (std::size_t t = 0; t < w; ++t) {
      poison[t] += a[t] * 0.0 + b[t] * 0.0 + d[t] * 0.0;
    }
  }
}

void BatchedAnalyzer::flag_group(BatchedModels& out, std::size_t g, const double* poison,
                                 const std::uint8_t* lane_input) const {
  const std::size_t w = lane_width_;
  for (std::size_t t = 0; t < w; ++t) {
    const std::size_t s = g * w + t;
    if (s >= out.samples_) break;  // padding lanes carry no verdict
    std::uint8_t flags = lane_input != nullptr
                             ? lane_input[t]
                             : (s < input_fault_.size() ? input_fault_[s] : std::uint8_t{0});
    if (!(poison[t] == 0.0)) flags |= eed::kFaultNonFiniteMoment;
    if (flags != 0) out.fault_flags_[s] = flags;
  }
}

void BatchedAnalyzer::finalize_faults(BatchedModels& out, const char* entry) const {
  std::size_t count = 0;
  for (const std::uint8_t f : out.fault_flags_) count += f != 0 ? 1u : 0u;
  if (count == 0) {
    out.fault_flags_ = {};
    out.fault_count_ = 0;
    return;
  }
  if (policy_ == util::FaultPolicy::kThrow) {
    std::size_t first = 0;
    while (out.fault_flags_[first] == 0) ++first;
    const bool input = (out.fault_flags_[first] & eed::kFaultBadInput) != 0;
    throw util::FaultError(util::Status(
        input ? util::ErrorCode::kInvalidArgument : util::ErrorCode::kNonFiniteMoment,
        std::string(entry) + ": " +
            (input ? "invalid element values" : "non-finite moments") + " in sample " +
            std::to_string(first) + " (" + std::to_string(count) + " faulted of " +
            std::to_string(out.samples_) + " samples)"));
  }
  if (policy_ == util::FaultPolicy::kClampAndFlag) {
    // Rare slow path: clamp the faulted samples' reported moments to the
    // RC-degenerate limit (0). Healthy lanes are never touched.
    const std::size_t rows = out.ids_.size();
    for (std::size_t s = 0; s < out.fault_flags_.size(); ++s) {
      if (out.fault_flags_[s] == 0) continue;
      for (std::size_t row = 0; row < rows; ++row) {
        const std::size_t at = row * out.padded_samples_ + s;
        if (!util::valid_element_value(out.sr_[at])) out.sr_[at] = 0.0;
        if (!util::valid_element_value(out.sl_[at])) out.sl_[at] = 0.0;
        if (!util::valid_element_value(out.ctot_[at])) out.ctot_[at] = 0.0;
      }
    }
  }
  out.fault_count_ = count;
}

BatchedModels BatchedAnalyzer::analyze_impl(const std::vector<SectionId>& ids, bool all_nodes,
                                            BatchAnalyzer* pool) const {
  if (samples_ == 0) throw std::invalid_argument("BatchedAnalyzer: no samples (call resize)");
  const std::size_t n = topo_.size();
  const std::size_t w = lane_width_;
  BatchedModels out = make_output(ids, all_nodes, samples_, groups_);

  // One lane-group per task; each task writes a disjoint sample range of
  // every output row (and disjoint flag bytes), so scheduling order cannot
  // affect the results. Scratch lives in the caller's frame (serial) or one
  // allocation per task invocation (pooled) — never one allocation per
  // group per pass. Fault policies never throw inside a task: verdicts are
  // recorded per sample and resolved after the join (finalize_faults), so
  // a faulted lane cannot abandon other groups' results mid-flight.
  const auto run_into = [&](std::size_t g, double* ctot, double* sr, double* sl) {
    run_group(g, ctot, sr, sl);
    double poison[8] = {};
    copy_group(out, g, ctot, sr, sl, poison);
    flag_group(out, g, poison, nullptr);
  };
  if (pool != nullptr && groups_ > 1) {
    pool->parallel_for(groups_, [&](std::size_t g) {
      std::vector<double> scratch(3 * n * w);
      run_into(g, scratch.data(), scratch.data() + n * w, scratch.data() + 2 * n * w);
    });
  } else {
    std::vector<double> scratch(3 * n * w);
    for (std::size_t g = 0; g < groups_; ++g) {
      run_into(g, scratch.data(), scratch.data() + n * w, scratch.data() + 2 * n * w);
    }
  }
  finalize_faults(out, "BatchedAnalyzer::analyze");
  return out;
}

BatchedModels BatchedAnalyzer::analyze_stream(std::size_t samples, const SampleFill& fill,
                                              const std::vector<SectionId>& ids,
                                              BatchAnalyzer* pool) const {
  if (samples == 0) throw std::invalid_argument("BatchedAnalyzer: no samples");
  const std::size_t n = topo_.size();
  const std::size_t w = lane_width_;
  const std::size_t groups = (samples + w - 1) / w;
  BatchedModels out = make_output(ids, /*all_nodes=*/ids.empty(), samples, groups);
  const SectionId* parent = topo_.parent().data();

  // Per-group working set: w sample-major staging rows (what the fill
  // callback writes) plus the kernel scratch. All of it lives and dies
  // inside one group, so for cache-sized n the values never round-trip
  // through memory — unlike the set_sample path, where the whole S·n
  // fill completes (and is evicted) before the first kernel sweep starts.
  // The kernel reads the staging rows in place (run_group_rows); no
  // transposed copy is materialized.
  const auto task = [&](std::size_t g, std::vector<double>& buf) {
    double* rows_r = buf.data();              // w rows of n: staging
    double* rows_l = rows_r + w * n;
    double* rows_c = rows_l + w * n;
    double* scratch = rows_c + w * n;         // ctot/sr/sl, n*w each
    for (std::size_t t = 0; t < w; ++t) {
      const std::size_t s = g * w + t;
      if (s < samples) {
        fill(s, rows_r + t * n, rows_l + t * n, rows_c + t * n);
      } else {
        // Padding lanes replicate the group's first sample: valid values,
        // never read back.
        std::memcpy(rows_r + t * n, rows_r, n * sizeof(double));
        std::memcpy(rows_l + t * n, rows_l, n * sizeof(double));
        std::memcpy(rows_c + t * n, rows_c, n * sizeof(double));
      }
    }
    std::uint8_t lane_input[8] = {};
    if (scan_values(buf.data(), 3 * w * n).bad()) {
      // Rare slow path: attribute the fault to specific lanes so healthy
      // samples in the same group stay unflagged; under kClampAndFlag the
      // staging values are repaired before the kernel consumes them.
      for (std::size_t t = 0; t < w; ++t) {
        ValueScan lane = scan_values(rows_r + t * n, n);
        lane.merge(scan_values(rows_l + t * n, n));
        lane.merge(scan_values(rows_c + t * n, n));
        if (lane.bad()) lane_input[t] = eed::kFaultBadInput;
      }
      if (policy_ == util::FaultPolicy::kClampAndFlag) {
        for (std::size_t i = 0; i < 3 * w * n; ++i) {
          if (!util::valid_element_value(buf[i])) buf[i] = 0.0;
        }
      }
    }
    double* ctot = scratch;
    double* sr = scratch + n * w;
    double* sl = scratch + 2 * n * w;
    switch (w) {
      case 1: run_group_rows<1>(n, parent, rows_r, rows_l, rows_c, ctot, sr, sl); break;
      case 2: run_group_rows<2>(n, parent, rows_r, rows_l, rows_c, ctot, sr, sl); break;
      case 4: run_group_rows<4>(n, parent, rows_r, rows_l, rows_c, ctot, sr, sl); break;
      case 8: run_group_rows<8>(n, parent, rows_r, rows_l, rows_c, ctot, sr, sl); break;
      default: throw std::logic_error("BatchedAnalyzer: unsupported lane width");
    }
    double poison[8] = {};
    copy_group(out, g, ctot, sr, sl, poison);
    flag_group(out, g, poison, lane_input);
  };
  const std::size_t buf_size = 6 * n * w;  // 3 staging + 3 scratch
  if (pool != nullptr && groups > 1) {
    pool->parallel_chunks(groups, [&](std::size_t begin, std::size_t end) {
      std::vector<double> buf(buf_size);
      for (std::size_t g = begin; g < end; ++g) task(g, buf);
    });
  } else {
    std::vector<double> buf(buf_size);
    for (std::size_t g = 0; g < groups; ++g) task(g, buf);
  }
  finalize_faults(out, "BatchedAnalyzer::analyze_stream");
  return out;
}

BatchedModels BatchedAnalyzer::analyze(BatchAnalyzer* pool) const {
  return analyze_impl({}, /*all_nodes=*/true, pool);
}

BatchedModels BatchedAnalyzer::analyze_nodes(const std::vector<SectionId>& ids,
                                             BatchAnalyzer* pool) const {
  return analyze_impl(ids, /*all_nodes=*/false, pool);
}

}  // namespace relmore::engine
