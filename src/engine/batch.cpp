#include "relmore/engine/batch.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "relmore/eed/model.hpp"
#include "relmore/util/fault_injector.hpp"

namespace relmore::engine {

/// Shared state of the pool. Jobs are strictly serial (parallel_for does
/// not return until the job is fully retired), so a single generation
/// counter is enough: every worker wakes exactly once per generation,
/// drains the shared atomic index, and reports back; the caller waits
/// until all workers have reported before retiring the job. Nested
/// parallel_for calls from inside tasks are not supported.
struct BatchAnalyzer::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::condition_variable cv_done;
  std::vector<std::thread> workers;

  const std::function<void(std::size_t)>* task = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};
  std::size_t finished = 0;  ///< workers done with the current generation
  std::uint64_t generation = 0;
  bool shutting_down = false;

  std::exception_ptr first_error;

  void drain(const std::function<void(std::size_t)>& fn, std::size_t n) {
    using util::FaultSite;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        // Injection sites: a slow worker (scheduling jitter, page fault
        // storm) and a dying worker (OOM-killed thread, stuck syscall
        // surfacing as an exception). Per task dispatch, outside kernels.
        if (util::fault_should_fire(FaultSite::kPoolDelay)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        if (util::fault_should_fire(FaultSite::kPoolAbort)) {
          throw util::FaultError(
              util::FaultInjector::fire_status(FaultSite::kPoolAbort));
        }
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t n = 0;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return shutting_down || generation != seen; });
        if (shutting_down) return;
        seen = generation;
        fn = task;
        n = count;
      }
      drain(*fn, n);
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (++finished == workers.size()) cv_done.notify_all();
      }
    }
  }
};

namespace {

/// RELMORE_THREADS pins the default worker count (CI, benchmarks),
/// accepted range [1, 64]. A value that is empty, non-numeric, only
/// partially numeric ("8x"), negative, zero, or out of range is NOT
/// silently honored or truncated: it falls back to the hardware default
/// (returns 0) with one warning on stderr, so a typo in a CI matrix
/// shows up in the log instead of as a mysterious thread count.
///
/// The environment is read exactly once per process, under
/// std::call_once: constructing BatchAnalyzer from several threads
/// concurrently must not interleave getenv with the warning path, and
/// every pool in the process must agree on the same default even if the
/// environment is mutated between constructions (setenv concurrent with
/// getenv is a data race in POSIX — reading once at first use is the
/// only read-vs-spawn ordering we can promise).
unsigned env_default_threads() {
  static std::once_flag once;
  static unsigned cached = 0;  // 0 = unset/invalid → hardware default
  std::call_once(once, [] {
    const char* env = std::getenv("RELMORE_THREADS");
    if (env == nullptr) return;
    errno = 0;
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (*env != '\0' && end != env && *end == '\0' && errno == 0 && parsed >= 1 &&
        parsed <= 64) {
      cached = static_cast<unsigned>(parsed);
    } else {
      std::fprintf(stderr,
                   "relmore: ignoring RELMORE_THREADS=\"%s\" (want an integer in "
                   "[1, 64]); using the hardware default\n",
                   env);
    }
  });
  return cached;
}

}  // namespace

BatchAnalyzer::BatchAnalyzer(unsigned threads) : impl_(new Impl) {
  if (threads == 0) threads = env_default_threads();
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min(hw == 0 ? 1u : hw, 8u);
  }
  threads_ = std::max(threads, 1u);
  impl_->workers.reserve(threads_ - 1);
  for (unsigned t = 1; t < threads_; ++t) {
    impl_->workers.emplace_back([impl = impl_] { impl->worker_loop(); });
  }
}

BatchAnalyzer::~BatchAnalyzer() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

void BatchAnalyzer::parallel_for(std::size_t count,
                                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (impl_->workers.empty()) {  // single-threaded pool: run inline
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->first_error = nullptr;
    impl_->count = count;
    impl_->drain(fn, count);
    if (impl_->first_error) std::rethrow_exception(impl_->first_error);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->task = &fn;
    impl_->count = count;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->finished = 0;
    impl_->first_error = nullptr;
    ++impl_->generation;
  }
  impl_->cv.notify_all();
  impl_->drain(fn, count);  // the caller works too
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->cv_done.wait(lock, [&] { return impl_->finished == impl_->workers.size(); });
    impl_->task = nullptr;
    if (impl_->first_error) std::rethrow_exception(impl_->first_error);
  }
}

void BatchAnalyzer::parallel_chunks(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min<std::size_t>(threads_, count);
  const std::size_t per = count / chunks;
  const std::size_t extra = count % chunks;
  parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * per + std::min(c, extra);
    const std::size_t end = begin + per + (c < extra ? 1 : 0);
    fn(begin, end);
  });
}

std::vector<eed::TreeModel> BatchAnalyzer::analyze_all(
    const std::vector<circuit::RlcTree>& trees) {
  std::vector<eed::TreeModel> out(trees.size());
  parallel_for(trees.size(), [&](std::size_t i) { out[i] = eed::analyze(trees[i]); });
  return out;
}

}  // namespace relmore::engine
