#include "relmore/engine/tuner.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace relmore::engine {

namespace {

// Cache probes with fallbacks matching common server parts; the exact
// numbers only steer tile sizing, so being off by 2x is benign.
std::size_t probe_l1_bytes() {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  const long bytes = sysconf(_SC_LEVEL1_DCACHE_SIZE);
  if (bytes > 0) return static_cast<std::size_t>(bytes);
#endif
  return std::size_t{48} * 1024;
}

std::size_t probe_l2_bytes() {
#if defined(_SC_LEVEL2_CACHE_SIZE)
  const long bytes = sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (bytes > 0) return static_cast<std::size_t>(bytes);
#endif
  return std::size_t{1024} * 1024;
}

// Largest supported lane width not exceeding the lane count, so a group
// never carries padded lanes that outnumber real ones. Unknown lane
// counts (0) get the full width and rely on tiling for locality.
unsigned width_for_lanes(std::size_t lanes, unsigned preferred) {
  if (lanes == 0 || lanes >= preferred) return preferred;
  if (lanes >= 4) return 4;
  if (lanes >= 2) return 2;
  return 1;
}

constexpr long kMaxTileRows = 4L * 1024 * 1024;

}  // namespace

const KernelTuner& KernelTuner::instance() {
  static std::once_flag once;
  static const KernelTuner* tuner = nullptr;
  // Leaked singleton: the tuner must outlive static-destruction-order
  // games because kernels may run from worker threads during teardown.
  std::call_once(once, [] { tuner = new KernelTuner(); });
  return *tuner;
}

KernelTuner::KernelTuner()
    : l1_bytes_(probe_l1_bytes()), l2_bytes_(probe_l2_bytes()) {
  const char* env = std::getenv("RELMORE_TUNE");
  if (env == nullptr) return;
  forced_ = parse_tune(env);
  if (!forced_.has_value()) {
    std::fprintf(stderr,
                 "relmore: ignoring RELMORE_TUNE=\"%s\" (want WxT with W in "
                 "{1, 2, 4, 8} and T a tile row count in [0, %ld], e.g. "
                 "\"4x2048\"; T=0 means untiled); using auto-calibration\n",
                 env, kMaxTileRows);
  }
}

std::optional<KernelPlan> KernelTuner::parse_tune(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long width = std::strtol(text, &end, 10);
  if (end == text || *end != 'x' || errno != 0) return std::nullopt;
  if (width != 1 && width != 2 && width != 4 && width != 8) {
    return std::nullopt;
  }
  const char* tile_text = end + 1;
  errno = 0;
  const long tile = std::strtol(tile_text, &end, 10);
  if (end == tile_text || *end != '\0' || errno != 0) return std::nullopt;
  if (tile < 0 || tile > kMaxTileRows) return std::nullopt;
  KernelPlan plan;
  plan.lane_width = static_cast<unsigned>(width);
  plan.tile_rows = static_cast<std::size_t>(tile);
  return plan;
}

std::size_t KernelTuner::tile_for(std::size_t sections,
                                  std::size_t bytes_per_section) const {
  // Keep a tile's working set in half of L2 — the other half holds the
  // output rows being drained plus whatever the caller keeps warm.
  const std::size_t budget = l2_bytes_ / 2;
  std::size_t tile = budget / bytes_per_section;
  // Tiny tiles pay sweep-restart overhead faster than they save misses.
  if (tile < 256) tile = 256;
  if (tile >= sections) return 0;  // whole tree fits: untiled
  return tile;
}

KernelPlan KernelTuner::analysis_plan(std::size_t sections,
                                      std::size_t samples) const {
  if (forced_.has_value()) return *forced_;
  KernelPlan plan;
  plan.lane_width = width_for_lanes(samples, 4);
  // Per section a two-pass sweep touches the r/l/c rows plus the
  // ctot/sr/sl lane blocks (6 doubles per lane) and a parent index.
  plan.tile_rows =
      tile_for(sections, 6 * sizeof(double) * plan.lane_width + 4);
  return plan;
}

KernelPlan KernelTuner::sim_plan(std::size_t sections,
                                 std::size_t runs) const {
  if (forced_.has_value()) return *forced_;
  KernelPlan plan;
  plan.lane_width = width_for_lanes(runs, 4);
  // Per section a transient step touches the seven state blocks, five
  // factor blocks, and the parent index.
  plan.tile_rows =
      tile_for(sections, 12 * sizeof(double) * plan.lane_width + 4);
  return plan;
}

}  // namespace relmore::engine
