#include "relmore/engine/timing_engine.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "relmore/circuit/validate.hpp"
#include "relmore/eed/second_order.hpp"

namespace relmore::engine {

using circuit::RlcTree;
using circuit::SectionId;
using util::ErrorCode;
using util::FaultError;
using util::Status;

namespace {

/// Edit-input guard: rejects NaN/Inf/negative R/L/C before any state is
/// touched (the strong exception guarantee hinges on validate-then-mutate).
void check_edit_values(const circuit::SectionValues& v, SectionId id) {
  for (const double x : {v.resistance, v.inductance, v.capacitance}) {
    if (util::valid_element_value(x)) continue;
    const bool non_finite = std::isnan(x) || std::isinf(x);
    throw FaultError(Status(
        non_finite ? ErrorCode::kNonFiniteValue : ErrorCode::kNegativeValue,
        std::string("TimingEngine: ") + (non_finite ? "non-finite" : "negative") +
            " element value in edit of section " + std::to_string(id),
        id));
  }
}

}  // namespace

TimingEngine::TimingEngine(RlcTree tree) : tree_(std::move(tree)) {
  if (tree_.empty()) throw std::invalid_argument("TimingEngine: empty tree");
  if (const util::DiagnosticsReport report = circuit::validate(tree_); !report.is_ok()) {
    throw FaultError(report.to_status());
  }
  const std::size_t n = tree_.size();
  alive_.assign(n, 1);
  level_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SectionId parent = tree_.section(static_cast<SectionId>(i)).parent;
    level_[i] = parent == circuit::kInput ? 1 : level_[static_cast<std::size_t>(parent)] + 1;
  }
  sr_.assign(n, 0.0);
  sl_.assign(n, 0.0);
  stamp_.assign(n, 0);
  rebuild_all();
}

util::Result<TimingEngine> TimingEngine::create_checked(RlcTree tree) {
  try {
    return TimingEngine(std::move(tree));
  } catch (const FaultError& e) {
    return e.status();
  } catch (const std::invalid_argument& e) {
    return Status(ErrorCode::kEmptyTree, e.what());
  }
}

void TimingEngine::check_alive(SectionId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= tree_.size()) {
    throw std::out_of_range("TimingEngine: section id out of range");
  }
  if (!alive_[static_cast<std::size_t>(id)]) {
    throw std::invalid_argument("TimingEngine: section has been pruned");
  }
}

bool TimingEngine::alive(SectionId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= tree_.size()) {
    throw std::out_of_range("TimingEngine: section id out of range");
  }
  return alive_[static_cast<std::size_t>(id)] != 0;
}

void TimingEngine::rebuild_all() {
  // Exactly eed::analyze's upward pass: seed with own C, then one reverse
  // scan folding each child into its parent (descending-id order), so the
  // cached ctot_ is bitwise identical to TreeModel::load_capacitance.
  const std::size_t n = tree_.size();
  ctot_.resize(n);
  tr_.resize(n);
  tl_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ctot_[i] = tree_.section(static_cast<SectionId>(i)).v.capacitance;
  }
  for (std::size_t i = n; i-- > 0;) {
    const SectionId parent = tree_.section(static_cast<SectionId>(i)).parent;
    if (parent != circuit::kInput) ctot_[static_cast<std::size_t>(parent)] += ctot_[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto& v = tree_.section(static_cast<SectionId>(i)).v;
    tr_[i] = v.resistance * ctot_[i];
    tl_[i] = v.inductance * ctot_[i];
  }
  ++epoch_;
  ++counters_.full_recomputes;
  counters_.edit_nodes_touched += n;
}

std::uint64_t TimingEngine::resum_path(SectionId id) {
  // Walk input-ward from `id`, recomputing each node's ctot from its own C
  // plus its children's (current) ctot in descending-id order — the same
  // association order as the fresh upward pass, so the result is bitwise
  // what a full recompute would produce.
  std::uint64_t touched = 0;
  for (SectionId cur = id; cur != circuit::kInput;
       cur = tree_.section(cur).parent) {
    const auto ci = static_cast<std::size_t>(cur);
    double c = tree_.section(cur).v.capacitance;
    const auto& kids = tree_.children(cur);
    for (std::size_t k = kids.size(); k-- > 0;) {
      c += ctot_[static_cast<std::size_t>(kids[k])];
    }
    ctot_[ci] = c;
    const auto& v = tree_.section(cur).v;
    tr_[ci] = v.resistance * c;
    tl_[ci] = v.inductance * c;
    ++touched;
  }
  return touched;
}

void TimingEngine::set_section_values(SectionId id, const circuit::SectionValues& v) {
  check_alive(id);
  check_edit_values(v, id);
  const auto i = static_cast<std::size_t>(id);
  const bool cap_changed = tree_.section(id).v.capacitance != v.capacitance;
  record_undo(id);
  tree_.values(id) = v;
  if (cap_changed) {
    counters_.edit_nodes_touched += resum_path(id);
  } else {
    // R/L only: ctot is untouched everywhere; only the local terms move.
    tr_[i] = v.resistance * ctot_[i];
    tl_[i] = v.inductance * ctot_[i];
    ++counters_.edit_nodes_touched;
  }
  ++epoch_;
  ++counters_.incremental_edits;
}

void TimingEngine::apply_edits(const std::vector<Edit>& edits) {
  if (edits.empty()) return;
  // Dirty-set fallback: propagating each edit costs its root-path length;
  // when the batch's summed path lengths reach one whole-tree sweep, the
  // sweep is the cheaper (and cache-friendlier) plan.
  std::uint64_t path_cost = 0;
  for (const Edit& e : edits) {
    check_alive(e.id);
    check_edit_values(e.v, e.id);
    path_cost += static_cast<std::uint64_t>(level_[static_cast<std::size_t>(e.id)]);
  }
  if (path_cost >= tree_.size()) {
    for (const Edit& e : edits) {
      record_undo(e.id);
      tree_.values(e.id) = e.v;
    }
    rebuild_all();
    return;
  }
  for (const Edit& e : edits) set_section_values(e.id, e.v);
}

std::vector<SectionId> TimingEngine::graft(SectionId parent, const RlcTree& subtree) {
  if (parent != circuit::kInput) check_alive(parent);
  if (subtree.empty()) throw std::invalid_argument("TimingEngine::graft: empty subtree");
  const std::size_t base = tree_.size();
  const std::size_t m = subtree.size();
  // Validate every incoming value before the first append so a poisoned
  // subtree leaves the engine untouched (strong exception guarantee).
  for (std::size_t s = 0; s < m; ++s) {
    check_edit_values(subtree.section(static_cast<SectionId>(s)).v,
                      static_cast<SectionId>(s));
  }
  if (in_tx_) {
    UndoEntry marker;
    marker.id = circuit::kInput;
    marker.truncate_to = base;
    undo_.push_back(marker);
  }
  std::vector<SectionId> id_map(m, circuit::kInput);
  for (std::size_t s = 0; s < m; ++s) {
    const auto& sec = subtree.section(static_cast<SectionId>(s));
    const SectionId new_parent =
        sec.parent == circuit::kInput ? parent
                                      : id_map[static_cast<std::size_t>(sec.parent)];
    id_map[s] = tree_.add_section(new_parent, sec.v, sec.name);
  }
  const std::size_t n = tree_.size();
  alive_.resize(n, 1);
  level_.resize(n);
  ctot_.resize(n);
  tr_.resize(n);
  tl_.resize(n);
  sr_.resize(n, 0.0);
  sl_.resize(n, 0.0);
  stamp_.resize(n, 0);
  // Upward pass over just the appended range (its children all lie inside
  // the range), then fold the grafted load into the attachment path.
  for (std::size_t i = base; i < n; ++i) {
    const auto id = static_cast<SectionId>(i);
    const SectionId p = tree_.section(id).parent;
    level_[i] = p == circuit::kInput ? 1 : level_[static_cast<std::size_t>(p)] + 1;
    ctot_[i] = tree_.section(id).v.capacitance;
  }
  for (std::size_t i = n; i-- > base;) {
    const SectionId p = tree_.section(static_cast<SectionId>(i)).parent;
    if (p != circuit::kInput && static_cast<std::size_t>(p) >= base) {
      ctot_[static_cast<std::size_t>(p)] += ctot_[i];
    }
  }
  for (std::size_t i = base; i < n; ++i) {
    const auto& v = tree_.section(static_cast<SectionId>(i)).v;
    tr_[i] = v.resistance * ctot_[i];
    tl_[i] = v.inductance * ctot_[i];
  }
  std::uint64_t touched = n - base;
  if (parent != circuit::kInput) touched += resum_path(parent);
  counters_.edit_nodes_touched += touched;
  ++counters_.incremental_edits;
  ++epoch_;
  return id_map;
}

void TimingEngine::prune(SectionId id) {
  check_alive(id);
  // Tombstone the subtree and zero its values: a zero-R/L/C section is an
  // ideal stub contributing nothing to any Ctot/SR/SL, so the remaining
  // live nodes see exactly the tree with the subtree removed.
  std::vector<SectionId> stack{id};
  std::uint64_t touched = 0;
  while (!stack.empty()) {
    const SectionId cur = stack.back();
    stack.pop_back();
    const auto ci = static_cast<std::size_t>(cur);
    record_undo(cur);
    alive_[ci] = 0;
    tree_.values(cur) = circuit::SectionValues{0.0, 0.0, 0.0};
    ctot_[ci] = 0.0;
    tr_[ci] = 0.0;
    tl_[ci] = 0.0;
    ++touched;
    for (const SectionId c : tree_.children(cur)) {
      if (alive_[static_cast<std::size_t>(c)]) stack.push_back(c);
    }
  }
  const SectionId parent = tree_.section(id).parent;
  if (parent != circuit::kInput) touched += resum_path(parent);
  counters_.edit_nodes_touched += touched;
  ++counters_.incremental_edits;
  ++epoch_;
}

void TimingEngine::record_undo(SectionId id) {
  if (!in_tx_) return;
  UndoEntry e;
  e.id = id;
  e.v = tree_.section(id).v;
  e.alive = alive_[static_cast<std::size_t>(id)];
  undo_.push_back(e);
}

void TimingEngine::begin_transaction() {
  if (in_tx_) {
    throw FaultError(Status(ErrorCode::kTransactionState,
                            "TimingEngine: transaction already open (no nesting)"));
  }
  in_tx_ = true;
  undo_.clear();
}

void TimingEngine::commit() {
  if (!in_tx_) {
    throw FaultError(
        Status(ErrorCode::kTransactionState, "TimingEngine: commit without transaction"));
  }
  in_tx_ = false;
  undo_.clear();
}

void TimingEngine::rollback() {
  if (!in_tx_) {
    throw FaultError(
        Status(ErrorCode::kTransactionState, "TimingEngine: rollback without transaction"));
  }
  // Replay the journal newest-first. Value entries for sections a later
  // (in journal order, i.e. earlier here) graft appended are replayed
  // before their truncate marker drops those sections, so every restore
  // targets an id that still exists.
  for (std::size_t k = undo_.size(); k-- > 0;) {
    const UndoEntry& e = undo_[k];
    if (e.id == circuit::kInput) {
      tree_.truncate(e.truncate_to);
      const std::size_t n = e.truncate_to;
      alive_.resize(n);
      level_.resize(n);
      ctot_.resize(n);
      tr_.resize(n);
      tl_.resize(n);
      sr_.resize(n);
      sl_.resize(n);
      stamp_.resize(n);
    } else {
      tree_.values(e.id) = e.v;
      alive_[static_cast<std::size_t>(e.id)] = e.alive;
    }
  }
  undo_.clear();
  in_tx_ = false;
  // Values and liveness are now exactly the pre-transaction ones; one full
  // sweep rebuilds ctot/tr/tl bitwise-identical to that state (it is the
  // same association order the original construction used), and the epoch
  // bump forces every lazy prefix to re-derive from them.
  rebuild_all();
}

void TimingEngine::refresh_prefix(SectionId id) const {
  // Climb until a fresh prefix (or the input), then unwind computing
  // sr/sl top-down — the same left-to-right accumulation as the fresh
  // downward pass, so refreshed prefixes match it bitwise.
  std::vector<SectionId> stale;
  SectionId cur = id;
  while (cur != circuit::kInput && stamp_[static_cast<std::size_t>(cur)] != epoch_) {
    stale.push_back(cur);
    cur = tree_.section(cur).parent;
  }
  double sr = cur == circuit::kInput ? 0.0 : sr_[static_cast<std::size_t>(cur)];
  double sl = cur == circuit::kInput ? 0.0 : sl_[static_cast<std::size_t>(cur)];
  for (std::size_t k = stale.size(); k-- > 0;) {
    const auto i = static_cast<std::size_t>(stale[k]);
    sr += tr_[i];
    sl += tl_[i];
    sr_[i] = sr;
    sl_[i] = sl;
    stamp_[i] = epoch_;
  }
  counters_.query_nodes_walked += stale.size();
}

eed::NodeModel TimingEngine::node_from_prefix(std::size_t i) const {
  eed::NodeModel nm;
  nm.sum_rc = sr_[i];
  nm.sum_lc = sl_[i];
  if (nm.sum_lc > 0.0) {
    const double root = std::sqrt(nm.sum_lc);
    nm.omega_n = 1.0 / root;
    nm.zeta = nm.sum_rc / (2.0 * root);
  } else {
    nm.omega_n = std::numeric_limits<double>::infinity();
    nm.zeta = std::numeric_limits<double>::infinity();
  }
  return nm;
}

eed::NodeModel TimingEngine::node(SectionId id) const {
  check_alive(id);
  ++counters_.queries;
  refresh_prefix(id);
  return node_from_prefix(static_cast<std::size_t>(id));
}

double TimingEngine::delay_50(SectionId id) const { return eed::delay_50(node(id)); }

double TimingEngine::load_capacitance(SectionId id) const {
  check_alive(id);
  return ctot_[static_cast<std::size_t>(id)];
}

eed::TreeModel TimingEngine::model() const {
  const std::size_t n = tree_.size();
  if (all_fresh_epoch_ != epoch_) {
    // One downward prefix pass in id order — identical to the fresh pass.
    for (std::size_t i = 0; i < n; ++i) {
      const SectionId parent = tree_.section(static_cast<SectionId>(i)).parent;
      const auto pi = static_cast<std::size_t>(parent);
      sr_[i] = (parent == circuit::kInput ? 0.0 : sr_[pi]) + tr_[i];
      sl_[i] = (parent == circuit::kInput ? 0.0 : sl_[pi]) + tl_[i];
      stamp_[i] = epoch_;
    }
    counters_.query_nodes_walked += n;
    all_fresh_epoch_ = epoch_;
  }
  ++counters_.queries;
  eed::TreeModel out;
  out.nodes.resize(n);
  out.load_capacitance = ctot_;
  for (std::size_t i = 0; i < n; ++i) out.nodes[i] = node_from_prefix(i);
  return out;
}

}  // namespace relmore::engine
