#pragma once

/// \file batched.hpp
/// Batched same-topology analysis kernels: one tree, S value samples,
/// AoSoA layout, lane-per-sample.
///
/// The hot statistical and synthesis workloads (Monte-Carlo variation,
/// buffer-stage tables, wire-sizing candidate sweeps) re-run the *same
/// topology* with different R/L/C values thousands of times. Running S
/// independent `eed::analyze` calls repeats the topology walk, the
/// per-call result allocations, and the AoS cache misses S times over.
/// `BatchedAnalyzer` instead fixes the topology once (a
/// `circuit::FlatTree` snapshot) and groups samples into lane-groups of
/// width W (1, 2, 4, or 8 doubles). Values are *stored* sample-major —
/// sample s owns one contiguous row of n doubles per array, so fills are
/// straight memcpys — and the kernel reads the W rows of a group
/// directly, transposing into its W-wide lane blocks on the fly:
///
///   values[sample s][section i],  lane t of group g  =  sample g·W + t
///
/// The upward/downward passes then run once per lane-group with a
/// fixed-width inner loop over the lanes, which `-O3` autovectorizes (no
/// intrinsics; the hot kernels are additionally multi-versioned via GCC
/// target_clones so an AVX2 clone is dispatched at runtime, and the
/// RELMORE_ENABLE_NATIVE_ARCH CMake option widens codegen further). Each
/// lane executes exactly the scalar pass's operations in exactly its
/// association order, so every sample's results are *bitwise* identical
/// to a scalar `eed::analyze` of that sample's tree — and hence
/// independent of the lane width and of how lane-groups are scheduled
/// across threads.
///
/// Working-set control (see docs/kernels.md): the downward sweep runs in
/// contiguous tiles of `tile_rows()` sections, draining completed output
/// rows while cache-hot; sparse shallow `analyze_nodes` queries take a
/// root-path walk instead of the full downward sweep. Lane width (when
/// constructed with 0) and tile size (when left at 0 = auto) come from
/// `engine::KernelTuner`, overridable process-wide via `RELMORE_TUNE=WxT`.
/// Tiling and tuning reorder only the *touch* order, never the reduction
/// order — results stay bitwise-equal across every (W, tile) choice.
///
/// Lane-groups are independent, so a `BatchAnalyzer` pool can fan them
/// across cores (`analyze(&pool)`); outputs are written to disjoint
/// ranges, keeping results thread-count-independent. See docs/kernels.md
/// for the layout diagrams and measured throughput.
///
/// Robustness contract (docs/robustness.md): the constructor validates the
/// topology (`circuit::validate`) and throws util::FaultError on structural
/// or value errors. Sample values are validated on entry (NaN/Inf as well
/// as negatives — a plain min-scan misses NaN) and *reported* results are
/// scanned for non-finite moments after each kernel sweep; what happens on
/// a fault is selected by `set_fault_policy`:
///   kThrow (default)  — analyze/analyze_stream throw util::FaultError
///                       naming the first faulted sample,
///   kClampAndFlag     — bad inputs are clamped to 0, non-finite reported
///                       moments are clamped to 0, the sample is flagged,
///   kSkipAndFlag      — poisoned values are kept, the sample is flagged.
/// Faults are per-*sample* (per lane): one poisoned sample is flagged while
/// every healthy lane of the batch stays bitwise-identical to a scalar
/// `eed::analyze` of that sample's tree — the guards never touch the
/// kernel's arithmetic, only its inputs (at fill time) and the copied-out
/// results.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/util/deadline.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::engine {

class BatchAnalyzer;

/// Widest supported lane width: 8 doubles (one AVX-512 vector, two AVX2
/// vectors). Callers passing lane_width 0 get the KernelTuner's pick for
/// the tree size rather than this maximum — wide groups multiply the
/// per-section working set and lose past L2.
inline constexpr std::size_t kDefaultLaneWidth = 8;

/// Result of one batched analysis: (SR, SL, Ctot) for every requested
/// (sample, node) pair, plus the derived second-order model on demand.
class BatchedModels {
 public:
  [[nodiscard]] std::size_t samples() const { return samples_; }
  /// Section ids covered: every id for `analyze()`, the requested subset
  /// for `analyze_nodes()`.
  [[nodiscard]] const std::vector<circuit::SectionId>& node_ids() const { return ids_; }

  /// SR_i / SL_i / Ctot_i of section `id` in sample `s`. Throws
  /// std::out_of_range on an uncovered id or sample.
  [[nodiscard]] double sum_rc(std::size_t sample, circuit::SectionId id) const;
  [[nodiscard]] double sum_lc(std::size_t sample, circuit::SectionId id) const;
  [[nodiscard]] double load_capacitance(std::size_t sample, circuit::SectionId id) const;

  /// Full second-order model of (sample, id) — same formulas (and bits)
  /// as `eed::analyze(...).at(id)` on that sample's tree.
  [[nodiscard]] eed::NodeModel node(std::size_t sample, circuit::SectionId id) const;

  /// 50% delay at (sample, id), paper eq. 35.
  [[nodiscard]] double delay_50(std::size_t sample, circuit::SectionId id) const;

  // --- fault surface (see the robustness contract in the file header) ----

  /// True when no sample faulted — the common case; the flag storage is
  /// released so a fault-free batch costs nothing to carry around.
  [[nodiscard]] bool fault_free() const { return fault_count_ == 0; }
  /// Number of faulted samples (not nodes).
  [[nodiscard]] std::size_t fault_count() const { return fault_count_; }
  /// eed::AnalysisFault bits of one sample (kFaultNone when healthy).
  [[nodiscard]] std::uint8_t fault_flags(std::size_t sample) const;
  [[nodiscard]] bool faulted(std::size_t sample) const { return fault_flags(sample) != 0; }
  /// Indices of every faulted sample, ascending.
  [[nodiscard]] std::vector<std::size_t> faulted_samples() const;

  // --- run control (see set_run_control) ---------------------------------

  /// Non-ok when the analysis stopped early at a deadline/cancellation
  /// (kDeadlineExceeded / kCancelled). Samples that were not swept carry
  /// eed::kFaultNotRun in their flags (and count as faulted); every swept
  /// sample is bitwise-identical to an uninterrupted run.
  [[nodiscard]] const util::Status& stop_status() const { return stop_status_; }
  [[nodiscard]] bool stopped() const { return !stop_status_.is_ok(); }

 private:
  friend class BatchedAnalyzer;
  [[nodiscard]] std::size_t slot(std::size_t sample, circuit::SectionId id) const;

  std::size_t samples_ = 0;
  std::size_t padded_samples_ = 0;        ///< lane_groups * lane_width
  std::vector<circuit::SectionId> ids_;   ///< covered ids, row order
  std::vector<int> row_of_;               ///< id -> row, -1 when uncovered
  /// Row-major [row * padded_samples_ + sample].
  std::vector<double> sr_, sl_, ctot_;
  /// Per-sample eed::AnalysisFault bits; empty when every sample is healthy.
  std::vector<std::uint8_t> fault_flags_;
  std::size_t fault_count_ = 0;
  util::Status stop_status_;  ///< deadline/cancel verdict; ok when ran to completion
};

/// Same-topology batched analyzer: topology fixed at construction, value
/// samples filled in (concurrently, for distinct samples), then analyzed
/// in one or more kernel sweeps.
class BatchedAnalyzer {
 public:
  /// `lane_width` must be 1, 2, 4, or 8; 0 lets `engine::KernelTuner`
  /// pick for this tree size (respecting RELMORE_TUNE).
  /// Throws std::invalid_argument on other widths or an empty topology, and
  /// util::FaultError when `circuit::validate` rejects the topology.
  explicit BatchedAnalyzer(circuit::FlatTree topology, std::size_t lane_width = 0);

  /// Result-returning construction: an invalid lane width, empty topology,
  /// or validate-rejected topology comes back as a structured Status
  /// instead of an exception. Part of the repo-wide `_checked` convention;
  /// the throwing constructor remains the shim.
  [[nodiscard]] static util::Result<BatchedAnalyzer> create_checked(circuit::FlatTree topology,
                                                                    std::size_t lane_width = 0);

  /// Selects what happens when a sample's values or computed moments are
  /// degenerate (see the file header). Applies to subsequent calls only;
  /// input faults recorded under a flag policy still surface (or throw)
  /// at the next analyze.
  void set_fault_policy(util::FaultPolicy policy) { policy_ = policy; }
  [[nodiscard]] util::FaultPolicy fault_policy() const { return policy_; }

  /// Cooperative deadline/cancellation for subsequent analyze calls. The
  /// sweep polls the control at lane-group boundaries (never inside the
  /// hot loops): groups swept before the stop was observed are kept and
  /// stay bitwise-identical to an uninterrupted run; the rest are flagged
  /// eed::kFaultNotRun. Under kThrow a stop raises util::FaultError with
  /// kDeadlineExceeded / kCancelled; under the flag policies the result
  /// comes back with `BatchedModels::stop_status()` set. The caller must
  /// keep `rc.cancel` (when non-null) alive across the analyze calls.
  void set_run_control(util::RunControl rc) { run_ = rc; }
  [[nodiscard]] const util::RunControl& run_control() const { return run_; }

  [[nodiscard]] const circuit::FlatTree& topology() const { return topo_; }
  [[nodiscard]] std::size_t sections() const { return topo_.size(); }
  [[nodiscard]] std::size_t lane_width() const { return lane_width_; }
  [[nodiscard]] std::size_t samples() const { return samples_; }
  [[nodiscard]] std::size_t lane_groups() const { return groups_; }

  /// Tile size (sections) for the downward sweep. 0 (the default) lets
  /// `engine::KernelTuner` pick per analysis call; any explicit value —
  /// including degenerate ones (1, or >= sections() for an untiled
  /// sweep) — is used as-is. Tiling never changes results, only the
  /// order in which the sweep touches memory.
  void set_tile_rows(std::size_t tile_rows);
  [[nodiscard]] std::size_t tile_rows() const { return tile_rows_; }

  /// Sets the sample count and (re)initializes every sample — including
  /// the padding lanes of the last group — to the snapshot's nominal
  /// values.
  void resize(std::size_t samples);

  /// Overwrites sample `s` from arrays of length sections(). Safe to call
  /// concurrently for distinct `s`. Under kThrow, throws util::FaultError
  /// (a std::invalid_argument) on negative or non-finite values and
  /// std::out_of_range on a bad `s`; under the flag policies bad values
  /// mark the sample instead (clamped to 0 under kClampAndFlag).
  void set_sample(std::size_t s, const double* resistance, const double* inductance,
                  const double* capacitance);

  /// Overwrites one section of one sample.
  void set_section(std::size_t s, circuit::SectionId id, const circuit::SectionValues& v);

  /// Runs the kernel and returns models for every (sample, section).
  /// Output storage is S x n; prefer `analyze_nodes` for large trees when
  /// only a few nodes are queried. `pool` (optional) distributes
  /// lane-groups across its workers.
  [[nodiscard]] BatchedModels analyze(BatchAnalyzer* pool = nullptr) const;

  /// Runs the kernel but stores only the requested nodes (S x ids.size()
  /// outputs; the sweep itself is still O(n) per lane-group).
  [[nodiscard]] BatchedModels analyze_nodes(const std::vector<circuit::SectionId>& ids,
                                            BatchAnalyzer* pool = nullptr) const;

  /// Writes sample `s`'s values into three caller-provided arrays of
  /// length sections(). Must be safe to call concurrently for distinct
  /// `s` when a pool is passed to `analyze_stream`.
  using SampleFill =
      std::function<void(std::size_t s, double* resistance, double* inductance,
                         double* capacitance)>;

  /// Fused fill + analyze: generates and consumes one lane-group at a
  /// time, so a group's values go straight from the fill callback through
  /// the kernel while still cache-resident — they are never streamed to
  /// memory and read back, which is what limits the set_sample/analyze
  /// pair once S·n values outgrow the cache. Ignores (and does not
  /// disturb) any values stored via resize/set_sample; `samples` is
  /// independent of samples(). Results are bitwise identical to
  /// resize + set_sample(s, ...) + analyze_nodes(ids): the same
  /// sample-major rows are built per group and the same kernel consumes
  /// them. An empty
  /// `ids` stores every node (analyze() semantics). Padding lanes
  /// replicate the group's first sample. Throws std::invalid_argument on
  /// samples == 0; bad filled values follow the fault policy (kThrow
  /// raises util::FaultError after the sweep, naming the first faulted
  /// sample).
  [[nodiscard]] BatchedModels analyze_stream(std::size_t samples, const SampleFill& fill,
                                             const std::vector<circuit::SectionId>& ids,
                                             BatchAnalyzer* pool = nullptr) const;

 private:
  /// Per-call sweep schedule (tile size, path-walk choice, drain order);
  /// built once by make_plan, shared read-only by every group task.
  struct SweepPlan;

  [[nodiscard]] BatchedModels analyze_impl(const std::vector<circuit::SectionId>& ids,
                                           bool all_nodes, BatchAnalyzer* pool) const;
  [[nodiscard]] BatchedModels make_output(const std::vector<circuit::SectionId>& ids,
                                          bool all_nodes, std::size_t samples,
                                          std::size_t groups) const;
  [[nodiscard]] std::size_t value_slot(std::size_t s, std::size_t section) const;
  [[nodiscard]] SweepPlan make_plan(const BatchedModels& out, bool all_nodes,
                                    std::size_t samples) const;
  /// Runs the full kernel for lane-group `g` over the three sample-major
  /// value rows, draining results into `out` and recording the group's
  /// fault verdicts. `scratch` holds n*W doubles (path-walk mode) or
  /// 3·n·W (two-pass mode); `path` non-null selects the path walk.
  void sweep_group(const SweepPlan& plan, BatchedModels& out, std::size_t g,
                   const double* rows_r, const double* rows_l, const double* rows_c,
                   double* scratch, std::size_t* path,
                   const std::uint8_t* lane_input) const;
  /// Merges group `g`'s input flags (`lane_input[t]`, or input_fault_ when
  /// null) with the output `poison` verdicts into `out`'s per-sample flags.
  void flag_group(BatchedModels& out, std::size_t g, const double* poison,
                  const std::uint8_t* lane_input) const;
  /// Post-join fault resolution: counts flagged samples, applies the
  /// policy (throw / clamp reported rows), and drops the flag storage
  /// when every sample is healthy.
  void finalize_faults(BatchedModels& out, const char* entry) const;
  /// Group-boundary run-control poll. Returns true when group `g` must be
  /// skipped (stop already latched, or this poll trips it — the first
  /// observer CASes the code into `stop`); skipped groups' samples are
  /// flagged eed::kFaultNotRun in `out`.
  [[nodiscard]] bool group_stopped(std::atomic<std::uint8_t>& stop, BatchedModels& out,
                                   std::size_t g) const;
  /// Post-join stop resolution: records BatchedModels::stop_status (and
  /// throws under kThrow) when a deadline/cancel tripped mid-run.
  void finalize_stop(std::atomic<std::uint8_t>& stop, BatchedModels& out,
                     const char* entry) const;

  circuit::FlatTree topo_;
  std::size_t lane_width_ = kDefaultLaneWidth;
  std::size_t samples_ = 0;
  std::size_t groups_ = 0;
  std::size_t tile_rows_ = 0;  ///< explicit downward tile; 0 = auto
  util::FaultPolicy policy_ = util::FaultPolicy::kThrow;
  util::RunControl run_;       ///< disarmed by default (never stops)
  /// Sample-major values, indexed [sample * sections + section]; rows
  /// samples_..(lane_groups * lane_width) are nominal-valued padding.
  std::vector<double> r_, l_, c_;
  /// Per-sample eed::kFaultBadInput marks recorded by the flag policies.
  std::vector<std::uint8_t> input_fault_;
};

}  // namespace relmore::engine
