#pragma once

/// \file timing_engine.hpp
/// Incremental timing engine: O(depth) re-analysis of an RLC tree under
/// local edits (the reason the paper's closed form can live *inside*
/// synthesis loops, §IV).
///
/// `eed::analyze` recomputes the whole tree: an upward pass for the
/// subtree capacitances Ctot_i and a downward pass for the prefix sums
/// SR_i = Σ R_k·Ctot_k and SL_i = Σ L_k·Ctot_k along each root path
/// (paper Appendix, Figs. 17–18). Under a local edit almost all of that
/// work is unchanged: a value change at section j only moves Ctot on the
/// input→j path, and only the *local* terms R_k·Ctot_k on that path.
/// The engine therefore caches, per section,
///
///   ctot_i  — subtree capacitance        (maintained eagerly, O(depth)/edit)
///   tr_i    — R_i · ctot_i               (eagerly, O(depth)/edit)
///   tl_i    — L_i · ctot_i               (eagerly, O(depth)/edit)
///   sr_i, sl_i — root-path prefix sums   (lazily, refreshed on query)
///
/// and answers node queries by walking the root path until it meets a
/// prefix that is already fresh, so a query after a single edit costs
/// O(depth) instead of O(n). Batched edits fall back to a full O(n)
/// recompute when the summed path lengths would exceed one sweep
/// (the dirty-set fallback; dense edits such as a Monte-Carlo sample
/// re-perturbing every section take this path).
///
/// All incremental updates re-sum in exactly the association order of
/// `eed::analyze`'s two passes, so the cached state stays *bitwise*
/// identical to a fresh whole-tree analysis — optimizers rewired through
/// the engine follow the same trajectory they did with `eed::analyze`.
///
/// Structural edits: `graft` appends a subtree (ids are append-only, so
/// existing ids stay valid); `prune` detaches a subtree *electrically* by
/// zeroing its element values and tombstoning its sections (a zero-R/L/C
/// section is an ideal stub that contributes nothing to any sum), again
/// keeping ids stable. `tree()` always reflects the edited state, so
/// `eed::analyze(engine.tree())` is the ground truth the engine must (and
/// does) match.
///
/// Robustness contract: the constructor validates the tree
/// (circuit::validate — finite non-negative values, sound structure) and
/// throws util::FaultError on errors; every edit validates its inputs
/// (NaN/Inf/negative rejected) *before* mutating any state, so a throwing
/// edit leaves the engine exactly as it was (strong exception guarantee).
/// `begin_transaction`/`commit`/`rollback` group edits: while a
/// transaction is open every mutation is journaled (value snapshots plus
/// graft extents), and `rollback` restores the pre-transaction tree
/// exactly — post-rollback analysis results are bitwise-identical to
/// pre-transaction ones.

#include <cstdint>
#include <vector>

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/eed/model.hpp"

namespace relmore::engine {

/// Work counters for the full-vs-incremental accounting the benches print.
struct EngineCounters {
  std::uint64_t incremental_edits = 0;   ///< edits applied by delta propagation
  std::uint64_t full_recomputes = 0;     ///< whole-tree sweeps (init, dense fallback)
  std::uint64_t edit_nodes_touched = 0;  ///< sections visited while propagating edits
  std::uint64_t queries = 0;             ///< node-model queries answered
  std::uint64_t query_nodes_walked = 0;  ///< sections visited refreshing prefixes
};

/// One pending value edit for the batch API.
struct Edit {
  circuit::SectionId id = circuit::kInput;
  circuit::SectionValues v;
};

/// An analysis session over one RLC tree. Owns its tree; construct from a
/// copy (or move) of the circuit under optimization.
class TimingEngine {
 public:
  explicit TimingEngine(circuit::RlcTree tree);

  /// Result-returning construction: a tree that `circuit::validate`
  /// rejects comes back as a structured Status (code + node path) instead
  /// of a thrown util::FaultError. Part of the repo-wide `_checked`
  /// convention; the throwing constructor remains the shim.
  [[nodiscard]] static util::Result<TimingEngine> create_checked(circuit::RlcTree tree);

  /// The tree in its current edited state (pruned sections appear as
  /// zero-value stubs). `eed::analyze(tree())` equals `model()` exactly.
  [[nodiscard]] const circuit::RlcTree& tree() const { return tree_; }
  [[nodiscard]] std::size_t size() const { return tree_.size(); }
  /// False once a section has been pruned (directly or as a descendant).
  [[nodiscard]] bool alive(circuit::SectionId id) const;

  // --- edit API -----------------------------------------------------------

  /// Replaces section `id`'s R/L/C. O(path length) when the capacitance
  /// changes, O(1) otherwise. Throws on dead or out-of-range ids and on
  /// negative values (same contract as RlcTree::add_section).
  void set_section_values(circuit::SectionId id, const circuit::SectionValues& v);

  /// Applies a batch of edits, falling back to one full O(n) recompute
  /// when the batch is dense (summed path lengths would exceed one sweep).
  void apply_edits(const std::vector<Edit>& edits);

  /// Appends `subtree` (a forest is allowed) under `parent` (kInput to
  /// attach at the driving point). Returns the new id of each subtree
  /// section, indexed by its id inside `subtree`. O(subtree + path).
  std::vector<circuit::SectionId> graft(circuit::SectionId parent,
                                        const circuit::RlcTree& subtree);

  /// Electrically removes section `id` and its whole subtree: values are
  /// zeroed, the sections are tombstoned, and ids remain stable. Queries
  /// on pruned sections throw. O(subtree + path).
  void prune(circuit::SectionId id);

  // --- transactions -------------------------------------------------------

  /// Opens a transaction: subsequent edits are journaled until commit() or
  /// rollback(). Transactions do not nest; a second begin throws
  /// util::FaultError (kTransactionState).
  void begin_transaction();

  /// Closes the open transaction, keeping every edit. O(1).
  void commit();

  /// Closes the open transaction and restores the engine to its exact
  /// pre-transaction state: journaled values/tombstones are replayed in
  /// reverse, grafted sections are truncated away, and the caches are
  /// rebuilt from the restored values — so subsequent queries are
  /// bitwise-identical to pre-transaction ones. O(n + journal).
  void rollback();

  [[nodiscard]] bool in_transaction() const { return in_tx_; }

  // --- queries ------------------------------------------------------------

  /// Second-order model of one node. Worst case O(depth); O(1) when the
  /// node's prefix is already fresh (no edits since the last query of it
  /// or of a descendant's ancestor path).
  [[nodiscard]] eed::NodeModel node(circuit::SectionId id) const;

  /// 50% delay at one node (paper eq. 35) — the optimizer hot call.
  [[nodiscard]] double delay_50(circuit::SectionId id) const;

  /// Downstream (subtree) capacitance of a section; O(1).
  [[nodiscard]] double load_capacitance(circuit::SectionId id) const;

  /// Whole-tree model, identical to `eed::analyze(tree())`. O(n) after
  /// edits, O(n) copy when everything is already fresh.
  [[nodiscard]] eed::TreeModel model() const;

  [[nodiscard]] const EngineCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = EngineCounters{}; }

 private:
  /// One journaled mutation. `id == kInput` marks a graft boundary: replay
  /// truncates the tree back to `truncate_to` sections. Otherwise the
  /// entry restores section `id`'s pre-mutation values and liveness.
  struct UndoEntry {
    circuit::SectionId id = circuit::kInput;
    circuit::SectionValues v;
    char alive = 1;
    std::size_t truncate_to = 0;
  };

  void check_alive(circuit::SectionId id) const;
  /// Journals section `id`'s current state when a transaction is open.
  void record_undo(circuit::SectionId id);
  /// Full O(n) sweep: recomputes ctot/tr/tl exactly as eed::analyze's
  /// upward pass and invalidates all prefixes.
  void rebuild_all();
  /// Re-sums ctot (and tr/tl) at `id` and every ancestor, in the fresh
  /// pass's association order. Returns sections touched.
  std::uint64_t resum_path(circuit::SectionId id);
  /// Refreshes sr_/sl_ for `id` (and any stale ancestors). Bumps the
  /// query counters.
  void refresh_prefix(circuit::SectionId id) const;
  [[nodiscard]] eed::NodeModel node_from_prefix(std::size_t i) const;

  circuit::RlcTree tree_;
  std::vector<char> alive_;
  std::vector<int> level_;       ///< 1-based depth, for the dense-edit estimate
  std::vector<double> ctot_;     ///< subtree capacitance (always current)
  std::vector<double> tr_, tl_;  ///< R·ctot, L·ctot (always current)
  mutable std::vector<double> sr_, sl_;        ///< prefix sums (lazy)
  mutable std::vector<std::uint64_t> stamp_;   ///< epoch at which sr_/sl_ was computed
  std::uint64_t epoch_ = 1;                    ///< bumped by every edit
  mutable std::uint64_t all_fresh_epoch_ = 0;  ///< epoch of last whole-tree refresh
  mutable EngineCounters counters_;
  bool in_tx_ = false;
  std::vector<UndoEntry> undo_;  ///< journal of the open transaction
};

}  // namespace relmore::engine
