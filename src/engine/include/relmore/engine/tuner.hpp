#pragma once

/// \file tuner.hpp
/// One-time per-process kernel calibration: lane width + tile size.
///
/// The batched kernels have two working-set knobs:
///
///   * **lane width W** — how many samples/runs share one AoSoA group.
///     Wider groups amortize the parent-index gather but multiply the
///     per-section working set by W, so the best W shrinks as trees grow.
///   * **tile rows T** — how many contiguous sections a sweep touches
///     before handing completed rows to the output sink. Tiling keeps the
///     per-tile working set inside L2 once `n` outgrows it; `T == 0`
///     means untiled (whole-tree sweeps).
///
/// `KernelTuner` probes cache geometry once per process (cached behind
/// `std::call_once`) and hands out a `KernelPlan` per (sections, lanes)
/// bucket. `engine::BatchedAnalyzer`, `sim::BatchSimulator`, and
/// `sta::analyze_corpus_checked` consult it whenever the caller passes
/// width 0 ("auto").
///
/// The `RELMORE_TUNE=WxT` environment variable overrides calibration for
/// the whole process (e.g. `RELMORE_TUNE=4x2048`; `T=0` forces untiled).
/// It follows the `RELMORE_THREADS` convention: read once, malformed
/// values rejected loudly on stderr and ignored.
///
/// Plans never change results — every (W, T) combination is bitwise-equal
/// to the scalar oracle; the tuner only picks which equivalent schedule
/// runs fastest.

#include <cstddef>
#include <optional>

namespace relmore::engine {

/// A kernel schedule: lane width and sweep tile size.
struct KernelPlan {
  /// Samples per AoSoA group; one of {1, 2, 4, 8}.
  unsigned lane_width = 4;
  /// Contiguous sections per sweep tile; 0 = untiled (whole-tree sweeps).
  std::size_t tile_rows = 0;
};

class KernelTuner {
 public:
  /// The process-wide tuner. First call probes cache geometry and reads
  /// `RELMORE_TUNE` (both under `std::call_once`); later calls are free.
  static const KernelTuner& instance();

  /// Plan for the analysis kernels (BatchedAnalyzer / sta corpus groups).
  /// `samples == 0` means "not yet known" and yields the generic plan for
  /// that tree size.
  [[nodiscard]] KernelPlan analysis_plan(std::size_t sections,
                                         std::size_t samples) const;

  /// Plan for the transient kernels (BatchSimulator). `runs == 0` means
  /// "not yet known".
  [[nodiscard]] KernelPlan sim_plan(std::size_t sections,
                                    std::size_t runs) const;

  /// True when a valid `RELMORE_TUNE` override is pinning every plan.
  [[nodiscard]] bool forced() const { return forced_.has_value(); }

  /// Cache sizes the calibration is working from (probed or fallback).
  [[nodiscard]] std::size_t l1_bytes() const { return l1_bytes_; }
  [[nodiscard]] std::size_t l2_bytes() const { return l2_bytes_; }

  /// Parses a `RELMORE_TUNE` value ("WxT", W in {1,2,4,8}, T in
  /// [0, 4194304]). Returns nullopt on any malformed input. Exposed
  /// separately so tests can cover the grammar without env games.
  static std::optional<KernelPlan> parse_tune(const char* text);

 private:
  KernelTuner();

  [[nodiscard]] std::size_t tile_for(std::size_t sections,
                                     std::size_t bytes_per_section) const;

  std::optional<KernelPlan> forced_;
  std::size_t l1_bytes_ = 0;
  std::size_t l2_bytes_ = 0;
};

}  // namespace relmore::engine
