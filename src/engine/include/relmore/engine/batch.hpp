#pragma once

/// \file batch.hpp
/// Small persistent thread pool that fans *independent* trees across
/// cores: Monte-Carlo variation samples, buffer-insertion stage
/// candidates, per-corner re-analyses. One whole-tree analysis is O(n)
/// with two multiplications per section (paper Appendix), so single
/// analyses never need threads — the win is in the embarrassingly
/// parallel batches the optimization and statistical workloads generate.
///
/// A TimingEngine is not thread-safe (its prefix caches mutate on query);
/// the intended pattern is one engine per worker, which `parallel_chunks`
/// makes natural: each chunk builds its own engine and loops its range.

#include <cstddef>
#include <functional>
#include <vector>

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/eed/model.hpp"

namespace relmore::engine {

/// Fixed-size worker pool. Destruction joins the workers; the calling
/// thread always participates in the work, so `BatchAnalyzer(1)` (or any
/// single-core machine) degrades to plain sequential execution with no
/// thread traffic.
class BatchAnalyzer {
 public:
  /// `threads` = total workers including the caller; 0 consults the
  /// RELMORE_THREADS environment variable (an integer in [1, 64]; any
  /// other value — empty, non-numeric, trailing garbage, out of range —
  /// is rejected with one stderr warning) and falls back to
  /// min(hardware_concurrency, 8). Clamped to at least 1.
  explicit BatchAnalyzer(unsigned threads = 0);
  ~BatchAnalyzer();

  BatchAnalyzer(const BatchAnalyzer&) = delete;
  BatchAnalyzer& operator=(const BatchAnalyzer&) = delete;

  [[nodiscard]] unsigned thread_count() const { return threads_; }

  /// Runs fn(i) for every i in [0, count) across the pool (atomic
  /// work-stealing; order unspecified). Rethrows the first exception any
  /// task threw, after all tasks finish or are abandoned.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Runs fn(begin, end) on contiguous chunks covering [0, count), at
  /// most one chunk per worker — the one-engine-per-worker pattern.
  void parallel_chunks(std::size_t count,
                       const std::function<void(std::size_t, std::size_t)>& fn);

  /// Analyzes each tree (eed::analyze semantics), fanned across the pool.
  [[nodiscard]] std::vector<eed::TreeModel> analyze_all(
      const std::vector<circuit::RlcTree>& trees);

 private:
  struct Impl;
  Impl* impl_;
  unsigned threads_ = 1;
};

}  // namespace relmore::engine
