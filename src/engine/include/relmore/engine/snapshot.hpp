#pragma once

/// \file snapshot.hpp
/// Epoch-stamped snapshot sharing between one writer and many readers —
/// the concurrency primitive the timing-as-a-service daemon inherits.
///
/// The corpus-scale flows (sta::analyze_corpus_checked today, the analysis
/// daemon on the ROADMAP) want one thread editing a tree through a
/// `TimingEngine` while other threads analyze a *consistent* view of it.
/// `circuit::FlatTree` is already immutable after construction, so the
/// only coordination problem is handing a fresh snapshot from the writer
/// to the readers without tearing or leaking. `SharedSnapshot` is that
/// hand-off point: the writer publishes (FlatTree, epoch) records, readers
/// acquire a `shared_ptr` to the latest record and analyze it lock-free
/// for as long as they hold the pointer.
///
/// ## The happens-before story (the contract TSan checks)
///
/// 1. A record is built *entirely* on the writer thread: the FlatTree
///    constructor runs, the epoch is stamped, and only then is the record
///    linked in under the mutex. After `publish` returns, nothing ever
///    writes to the record again — records are immutable, retired only by
///    the last `shared_ptr` dropping.
/// 2. `publish` releases the mutex; `acquire` takes it. Everything the
///    writer did before `publish` — including writes to side tables the
///    reader consults per epoch — is therefore visible to any reader that
///    obtained that record (mutex release/acquire ordering).
/// 3. Readers never block each other: `acquire` is one mutex-protected
///    shared_ptr copy; analysis runs entirely outside the lock on
///    immutable data. A reader holding an old record is unaffected by
///    later publishes (no reclamation until its pointer drops).
/// 4. Epochs are strictly increasing; `publish` rejects regressions. A
///    reader can thus use the epoch to index side state (caches keyed by
///    (epoch, h, method) in the daemon) without re-validating the tree.
///
/// This is deliberately a mutex, not a lock-free scheme: the critical
/// section is a pointer copy (~ns) while each analyze is µs-to-ms, so
/// contention is negligible and the memory-ordering argument stays
/// one-paragraph simple. The daemon can swap in
/// `std::atomic<std::shared_ptr>` later without changing the contract.

#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "relmore/circuit/flat_tree.hpp"

namespace relmore::engine {

/// One published (topology, epoch) pair. Immutable after publish; readers
/// hold it via shared_ptr for as long as they need it.
struct SnapshotRecord {
  circuit::FlatTree tree;
  std::uint64_t epoch = 0;

  SnapshotRecord(circuit::FlatTree t, std::uint64_t e) : tree(std::move(t)), epoch(e) {}
};

/// Single-writer / many-reader publication point for epoch-stamped
/// FlatTree snapshots. Thread-safe: `publish` from one thread at a time,
/// `acquire`/`epoch` from any number of threads concurrently.
class SharedSnapshot {
 public:
  SharedSnapshot() = default;

  /// Publishes a new snapshot. `epoch` must be strictly greater than the
  /// last published epoch (throws std::invalid_argument otherwise — a
  /// regression means two writers, which this primitive does not
  /// support). The FlatTree is moved into an immutable record before the
  /// lock is taken, so the critical section is one pointer swap.
  void publish(circuit::FlatTree tree, std::uint64_t epoch) {
    auto record = std::make_shared<const SnapshotRecord>(std::move(tree), epoch);
    std::lock_guard<std::mutex> lock(mutex_);
    if (current_ && epoch <= current_->epoch) {
      throw std::invalid_argument("SharedSnapshot::publish: epoch must increase");
    }
    current_ = std::move(record);
  }

  /// Latest published record, or nullptr before the first publish. The
  /// returned record is immutable and stays valid for as long as the
  /// pointer is held, regardless of later publishes.
  [[nodiscard]] std::shared_ptr<const SnapshotRecord> acquire() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
  }

  /// Epoch of the latest published record; 0 before the first publish.
  [[nodiscard]] std::uint64_t epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return current_ ? current_->epoch : 0;
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const SnapshotRecord> current_;
};

}  // namespace relmore::engine
