#include "relmore/eed/elmore.hpp"

#include <cmath>

#include "relmore/eed/model.hpp"

namespace relmore::eed {

std::vector<double> elmore_time_constants(const circuit::RlcTree& tree) {
  const TreeModel model = analyze(tree);
  std::vector<double> tau(model.nodes.size());
  for (std::size_t i = 0; i < tau.size(); ++i) tau[i] = model.nodes[i].sum_rc;
  return tau;
}

double elmore_delay_50(double tau) { return tau; }

double wyatt_delay_50(double tau) { return std::log(2.0) * tau; }

double wyatt_rise_time(double tau) { return std::log(9.0) * tau; }

double wyatt_step_response(double tau, double t, double v_supply) {
  if (t <= 0.0) return 0.0;
  return v_supply * -std::expm1(-t / tau);
}

}  // namespace relmore::eed
