#include "relmore/eed/fit.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>
#include <vector>

#include "relmore/util/fit.hpp"

namespace relmore::eed {

namespace {

/// Fits a*exp(-z^p/b) + c*z (+ d); `extended` also fits the exponent p
/// and offset d (the rise-time shape needs both).
ScaledFitReport fit_metric(const std::function<double(double)>& exact, double zeta_min,
                           double zeta_max, int samples, const FitCoefficients& seed,
                           bool extended) {
  if (samples < 4 || zeta_max <= zeta_min || zeta_min < 0.0) {
    throw std::invalid_argument("fit_scaled_*: bad sweep parameters");
  }
  std::vector<double> zs(static_cast<std::size_t>(samples));
  std::vector<double> ys(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const double z = zeta_min + (zeta_max - zeta_min) * static_cast<double>(i) /
                                    static_cast<double>(samples - 1);
    zs[static_cast<std::size_t>(i)] = z;
    ys[static_cast<std::size_t>(i)] = exact(z);
  }
  // In extended mode the offset is slaved to the zeta = 0 anchor
  // (d = y(0) − a), so the fit is exact in the pure-LC limit and only
  // (a, b, c, p) are free.
  const double y0 = exact(0.0);
  const auto model = [extended, y0](double z, const std::vector<double>& prm) {
    const double p = extended ? prm[3] : 1.0;
    const double d = extended ? y0 - prm[0] : 0.0;
    const double zp = z == 0.0 ? 0.0 : std::pow(z, p);
    return prm[0] * std::exp(-zp / prm[1]) + prm[2] * z + d;
  };
  std::vector<double> p0{seed.a, seed.b, seed.c};
  if (extended) p0.push_back(seed.p);
  const util::FitResult r = util::fit_nonlinear(model, zs, ys, std::move(p0));
  ScaledFitReport rep;
  rep.coeffs = {r.params[0], r.params[1], r.params[2], extended ? r.params[3] : 1.0,
                extended ? y0 - r.params[0] : 0.0};
  rep.rms_residual = r.rms_residual;
  rep.max_abs_residual = r.max_abs_residual;
  return rep;
}

}  // namespace

ScaledFitReport fit_scaled_delay(double zeta_min, double zeta_max, int samples) {
  return fit_metric([](double z) { return scaled_delay_exact(z); }, zeta_min, zeta_max,
                    samples, delay_fit_paper(), /*extended=*/false);
}

ScaledFitReport fit_scaled_rise(double zeta_min, double zeta_max, int samples) {
  return fit_metric([](double z) { return scaled_rise_exact(z); }, zeta_min, zeta_max, samples,
                    {2.0, 1.3, 4.55, 1.7, -0.9}, /*extended=*/true);
}

}  // namespace relmore::eed
