#pragma once

/// \file sensitivity.hpp
/// Closed-form delay sensitivities — the payoff of the paper's emphasis on
/// a *continuous analytical* delay expression (abstract, §IV): the fitted
/// 50% delay at a node is differentiable in every section's R, L, C, and
/// the whole gradient is computable in O(n) by chaining
///
///   D_i = t'(zeta_i) * sqrt(SL_i),      zeta_i = SR_i / (2 sqrt(SL_i))
///
/// through the two path sums. Gradients drive sizing optimizers and the
/// first-order process-variation estimate in relmore::analysis.

#include <vector>

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/eed/model.hpp"

namespace relmore::eed {

/// Partial derivatives of one metric with respect to one section's values.
struct SectionSensitivity {
  double d_resistance = 0.0;   ///< d(metric)/dR_k  [s/ohm]
  double d_inductance = 0.0;   ///< d(metric)/dL_k  [s/H]
  double d_capacitance = 0.0;  ///< d(metric)/dC_k  [s/F]
};

/// Gradient of the fitted 50% delay at `node` w.r.t. every section.
struct SensitivityReport {
  circuit::SectionId node = circuit::kInput;
  double delay = 0.0;                          ///< nominal delay at `node`
  std::vector<SectionSensitivity> sections;    ///< indexed by SectionId
};

/// d/dzeta of the fitted scaled delay (paper eq. 33 form, analytic).
[[nodiscard]] double scaled_delay_fitted_derivative(double zeta);

/// Computes the full delay gradient at `node` in O(n). For nodes with no
/// inductance on any contributing path (pure-RC limit) the L-sensitivities
/// are reported as 0 and R/C follow the Wyatt form ln2·SR.
[[nodiscard]] SensitivityReport delay_sensitivity(const circuit::RlcTree& tree, circuit::SectionId node);

}  // namespace relmore::eed
