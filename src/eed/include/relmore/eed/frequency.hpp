#pragma once

/// \file frequency.hpp
/// Frequency-domain view of the second-order node model: the transfer
/// function H(jw), Bode sweeps, and the closed-form resonance/bandwidth
/// quantities that follow from (zeta, omega_n). Inductive interconnect is
/// a resonant low-pass — the resonant peak is the frequency-domain twin of
/// the time-domain overshoot the paper characterizes, and the exact
/// state-space transfer (sim::ModalSolver::transfer) provides the
/// reference these closed forms are tested against.

#include <complex>
#include <vector>

#include "relmore/eed/model.hpp"

namespace relmore::eed {

/// H(j·omega) of the node's second-order model
/// 1 / (1 + 2 zeta (s/wn) + (s/wn)^2). For pure-RC nodes, the Wyatt
/// single-pole 1/(1 + j w tau).
[[nodiscard]] std::complex<double> transfer_function(const NodeModel& node, double omega);

/// 20 log10 |H(jw)|.
[[nodiscard]] double magnitude_db(const NodeModel& node, double omega);
/// Phase of H(jw) in degrees, in (-180, 0].
[[nodiscard]] double phase_deg(const NodeModel& node, double omega);

/// One Bode sample.
struct BodePoint {
  double omega = 0.0;
  double mag_db = 0.0;
  double phase_deg = 0.0;
};

/// Log-spaced Bode sweep over [omega_lo, omega_hi].
[[nodiscard]] std::vector<BodePoint> bode_sweep(const NodeModel& node, double omega_lo, double omega_hi,
                                  int points);

/// True when the magnitude response has a resonant peak (zeta < 1/sqrt(2)).
[[nodiscard]] bool has_resonant_peak(const NodeModel& node);

/// Resonant peak frequency  wn * sqrt(1 - 2 zeta^2); throws when no peak.
[[nodiscard]] double peak_frequency(const NodeModel& node);

/// Peak magnitude |H|max = 1 / (2 zeta sqrt(1 - zeta^2)); throws when no peak.
[[nodiscard]] double peak_magnitude(const NodeModel& node);

/// -3 dB bandwidth: wn * sqrt(1 - 2z^2 + sqrt((1 - 2z^2)^2 + 1)); for
/// pure-RC nodes, 1/tau.
[[nodiscard]] double bandwidth_3db(const NodeModel& node);

}  // namespace relmore::eed
