#pragma once

/// \file second_order.hpp
/// Closed-form signal characterization of the second-order node model
/// (paper Section IV): the time-scaled step response, the 50% delay and
/// 10–90% rise time (exact crossings and the paper's fitted forms),
/// overshoots, undershoots, and settling time.
///
/// Time scaling: with t' = omega_n * t the step response depends on zeta
/// alone (paper eq. 32), so all "scaled_*" functions are functions of zeta
/// only; dividing by omega_n recovers physical time (eqs. 35–36).

#include "relmore/eed/model.hpp"

namespace relmore::eed {

/// Scaled unit-step response g(zeta, t') of 1/(1 + 2 zeta s' + s'^2)
/// (paper eq. 31 after scaling). Valid for all damping conditions;
/// continuous across zeta = 1.
double scaled_step_response(double zeta, double t_scaled);

/// d/dt' of the scaled step response (used for peak localization).
double scaled_step_derivative(double zeta, double t_scaled);

/// Exact scaled first crossing of 50% (solved numerically from eq. 31 —
/// the ground truth the paper's curve fit approximates).
double scaled_delay_exact(double zeta);

/// Exact scaled 10%→90% rise time.
double scaled_rise_exact(double zeta);

/// Exact scaled first crossing of an arbitrary fraction in (0, 1).
double scaled_crossing_exact(double zeta, double fraction);

/// Coefficients of the fitted form  a·e^(−zeta^p/b) + c·zeta + d.
/// The paper's 50% delay fit (eq. 33) uses p = 1, d = 0; the rise-time
/// refit needs the exponent and offset to follow the knee of the exact
/// curve, which dips below its own large-zeta asymptote.
struct FitCoefficients {
  double a = 0.0;
  double b = 1.0;
  double c = 0.0;
  double p = 1.0;
  double d = 0.0;

  [[nodiscard]] double operator()(double zeta) const;
};

/// Paper eq. (33): t'_pd ≈ 1.047 e^(−zeta/0.85) + 1.39 zeta.
/// Anchors: t'_pd(0) = pi/3 ≈ 1.047 (pure LC), slope 2·ln2 ≈ 1.386 (RC limit).
FitCoefficients delay_fit_paper();

/// Rise-time fit in the eq. (34) functional form, re-derived in this
/// library by least squares against scaled_rise_exact() over zeta ∈ [0, 3]
/// (the digits of the paper's eq. 34 were not preserved in the available
/// text; see DESIGN.md §4). Anchors: t'_r(0) ≈ 1.0197 (pure LC),
/// slope 2·ln9 ≈ 4.394 (RC limit).
FitCoefficients rise_fit_refit();

/// Fitted scaled 50% delay (paper eq. 33) and rise time (refit eq. 34 form).
double scaled_delay_fitted(double zeta);
double scaled_rise_fitted(double zeta);

/// Physical-time metrics of a node (paper eqs. 35–38). The *_fitted
/// variants use the closed-form fits; the *_exact variants solve eq. 31.
/// For pure-RC nodes (omega_n = inf) all four reduce to the Wyatt
/// single-pole expressions ln2·SR and ln9·SR.
double delay_50(const NodeModel& node);
double delay_50_exact(const NodeModel& node);
double rise_time(const NodeModel& node);
double rise_time_exact(const NodeModel& node);

/// Overshoot/undershoot of the n-th extremum (n = 1, 2, ...; odd maxima,
/// even minima) as a percentage of the final value (paper eq. 39):
/// 100·e^(−n·pi·zeta/sqrt(1−zeta^2)). Requires zeta < 1.
double overshoot_pct(const NodeModel& node, int n);

/// Time of the n-th extremum (paper eq. 40): n·pi/(omega_n·sqrt(1−zeta^2)).
double overshoot_time(const NodeModel& node, int n);

/// Settling time (paper eqs. 41–42): time of the first extremum whose
/// excursion is below `band` (the paper's x, default 0.1) of the final
/// value. For zeta >= 1 the response is monotone and this returns the
/// (numerically solved) crossing of 1 − band.
double settling_time(const NodeModel& node, double band = 0.1);

}  // namespace relmore::eed
