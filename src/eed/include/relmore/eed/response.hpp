#pragma once

/// \file response.hpp
/// Time-domain responses of the second-order node model to the inputs the
/// paper analyses: ideal step (eq. 31), saturating exponential (eqs. 43–48),
/// and arbitrary sources (via the model's ODE, paper Section IV's "multiply
/// by the Laplace transform of the input" procedure done numerically).

#include <vector>

#include "relmore/eed/model.hpp"
#include "relmore/sim/source.hpp"
#include "relmore/sim/waveform.hpp"

namespace relmore::eed {

/// Step response v_i(t) with supply `v_supply` (paper eq. 31).
[[nodiscard]] double step_response(const NodeModel& node, double t, double v_supply = 1.0);

/// Closed-form response to the exponential input V(1 − e^{−t/tau})
/// (paper eqs. 43–48), valid for all damping conditions.
[[nodiscard]] double exp_input_response(const NodeModel& node, double t, double v_supply, double tau);

/// Closed-form response to a finite linear ramp (0 → v_supply over
/// `rise_seconds`, then flat) — the other canonical driver waveform the
/// paper's Section IV procedure covers. Derived by integrating the step
/// response: v(t) = V/T·[S(t) − S(t−T)] with S = ∫ step.
[[nodiscard]] double ramp_input_response(const NodeModel& node, double t, double v_supply,
                           double rise_seconds);

/// Samples step_response over `times`.
[[nodiscard]] sim::Waveform step_waveform(const NodeModel& node, const std::vector<double>& times,
                            double v_supply = 1.0);

/// Samples exp_input_response over `times`.
[[nodiscard]] sim::Waveform exp_input_waveform(const NodeModel& node, const std::vector<double>& times,
                                 double v_supply, double tau);

/// Samples ramp_input_response over `times`.
[[nodiscard]] sim::Waveform ramp_input_waveform(const NodeModel& node, const std::vector<double>& times,
                                  double v_supply, double rise_seconds);

/// Response of the second-order model to an arbitrary source, integrated
/// with adaptive RK45 on  v'' + 2 zeta omega_n v' + omega_n^2 v =
/// omega_n^2 u(t). Sampled at `times` (must be increasing from >= 0).
[[nodiscard]] sim::Waveform arbitrary_input_waveform(const NodeModel& node, const sim::Source& source,
                                       const std::vector<double>& times);

}  // namespace relmore::eed
