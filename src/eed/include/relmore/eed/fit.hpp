#pragma once

/// \file fit.hpp
/// Re-derivation of the paper's curve fits (eqs. 33–34). The paper built
/// its closed forms by fitting  a·e^(−zeta/b) + c·zeta  to the numerically
/// exact time-scaled 50% delay and rise time; this module reruns that fit
/// with the library's own Gauss–Newton solver so the shipped coefficients
/// are reproducible from first principles (and testable against the
/// paper's published delay coefficients).

#include "relmore/eed/second_order.hpp"

namespace relmore::eed {

/// Result of refitting one scaled metric.
struct ScaledFitReport {
  FitCoefficients coeffs;
  double rms_residual = 0.0;
  double max_abs_residual = 0.0;
};

/// Fits a·e^(−z/b) + c·z to scaled_delay_exact over [zeta_min, zeta_max].
[[nodiscard]] ScaledFitReport fit_scaled_delay(double zeta_min = 0.0, double zeta_max = 3.0,
                                 int samples = 121);

/// Fits the same form to scaled_rise_exact.
[[nodiscard]] ScaledFitReport fit_scaled_rise(double zeta_min = 0.0, double zeta_max = 3.0,
                                int samples = 121);

}  // namespace relmore::eed
