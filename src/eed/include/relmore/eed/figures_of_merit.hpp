#pragma once

/// \file figures_of_merit.hpp
/// "Is inductance important here?" — the screening question from the
/// authors' companion paper the introduction cites:
/// Y. I. Ismail, E. G. Friedman, J. L. Neves, "Figures of Merit to
/// Characterize the Importance of On-Chip Inductance" (DAC'98 / TVLSI'99,
/// ref. [8]). For a line with total R, L, C driven by an edge with rise
/// time t_r, inductance matters in the window
///
///     t_r / (2 sqrt(L C))  <  1   (edge fast enough to excite the line)
///     (R/2) sqrt(C/L)      <  1   (line not resistance-damped)
///
/// i.e. the length/edge-rate range where neither the lumped-C nor the RC
/// model is adequate. These predicates let tools route nets to the cheap
/// RC Elmore path or the RLC model of this library.

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/circuit/segmentation.hpp"

namespace relmore::eed {

/// The two dimensionless figures of merit for one line.
struct InductanceFiguresOfMerit {
  double edge_ratio = 0.0;     ///< t_r / (2 sqrt(LC)); < 1 => fast edge
  double damping_ratio = 0.0;  ///< (R/2) sqrt(C/L);   < 1 => underdamped
  bool inductance_matters = false;  ///< both ratios below 1
};

/// Assesses a line from its totals. Throws std::invalid_argument when
/// L or C is non-positive (no inductance question to ask).
[[nodiscard]] InductanceFiguresOfMerit assess_line(double total_r, double total_l, double total_c,
                                     double rise_seconds);

/// Convenience for a physical wire spec.
[[nodiscard]] InductanceFiguresOfMerit assess_wire(const circuit::WireSpec& wire, double rise_seconds);

/// Tree-level screen: evaluates the root-to-node path totals of the most
/// remote sink; a cheap routing decision between RC-Elmore and EED.
[[nodiscard]] InductanceFiguresOfMerit assess_tree(const circuit::RlcTree& tree, double rise_seconds);

}  // namespace relmore::eed
