#pragma once

/// \file eed.hpp
/// Umbrella header for the Equivalent Elmore Delay library: include this to
/// get the node model, the closed-form signal characterization, the
/// time-domain responses, the RC baselines, and the curve-fit tooling.

#include "relmore/eed/elmore.hpp"     // IWYU pragma: export
#include "relmore/eed/fit.hpp"        // IWYU pragma: export
#include "relmore/eed/model.hpp"      // IWYU pragma: export
#include "relmore/eed/response.hpp"   // IWYU pragma: export
#include "relmore/eed/second_order.hpp"  // IWYU pragma: export
