#pragma once

/// \file model.hpp
/// The Equivalent Elmore Delay model for RLC trees (the paper's core
/// contribution, Section III + Appendix).
///
/// Each node i of an RLC tree is characterized by two path/subtree sums
///
///   SR_i = sum_k C_k R_ki   (the classic Elmore time constant), and
///   SL_i = sum_k C_k L_ki   (its inductive analogue),
///
/// where R_ki (L_ki) is the resistance (inductance) common to the paths
/// from the input to nodes k and i. From these, the second-order
/// approximation at node i (paper eqs. 29–30) is
///
///   omega_n,i = 1/sqrt(SL_i),   zeta_i = SR_i / (2 sqrt(SL_i)).
///
/// Both sums for *all* nodes are computed with two O(n) traversals and
/// exactly two multiplications per section (paper Appendix, Figs. 17–18).

#include <cstdint>
#include <vector>

#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::eed {

/// Per-node / per-sample fault flag bits surfaced by the numerical
/// guardrails (TreeModel::fault_flags, engine::BatchedModels sample
/// flags). A flag marks a node whose *own* moments are degenerate; with a
/// poisoned value mid-tree the whole affected root path and subtree carry
/// flags, because the moment prefix sums propagate the poison.
enum AnalysisFault : std::uint8_t {
  kFaultNone = 0,
  kFaultBadInput = 1,          ///< input R/L/C was NaN, Inf, or negative
  kFaultNonFiniteMoment = 2,   ///< SR/SL/Ctot became NaN or Inf
  kFaultNegativeMoment = 4,    ///< SR/SL/Ctot went negative
  kFaultNotRun = 8,            ///< sample skipped: deadline/cancel stop
};

/// Guardrail configuration for analyze(): what to do when a node's moment
/// sums come out non-finite or negative (a NaN/Inf/negative element value
/// slipped into the tree, or the sums overflowed). See
/// util::FaultPolicy: kThrow raises util::FaultError at the first faulted
/// node; kClampAndFlag clamps the degenerate moments to 0 (the RC/Elmore
/// limit) and records flags; kSkipAndFlag records flags and leaves the
/// poisoned values for the caller to inspect.
struct AnalyzeOptions {
  util::FaultPolicy fault_policy = util::FaultPolicy::kThrow;
};

/// Second-order characterization of one tree node.
struct NodeModel {
  double sum_rc = 0.0;   ///< SR_i = sum C_k R_ki [s] — the Elmore delay T_D,i
  double sum_lc = 0.0;   ///< SL_i = sum C_k L_ki [s^2]
  double zeta = 0.0;     ///< damping factor (eq. 29); +inf for pure-RC nodes
  double omega_n = 0.0;  ///< natural frequency [rad/s] (eq. 30); +inf for SL=0

  /// True when the node's response is underdamped (non-monotone).
  [[nodiscard]] bool underdamped() const { return zeta < 1.0; }
};

/// Per-tree analysis result.
struct TreeModel {
  std::vector<NodeModel> nodes;  ///< indexed by SectionId
  /// Downstream (subtree) capacitance seen by each section — the upward
  /// pass of the Appendix algorithm, exposed because wire sizing and buffer
  /// insertion reuse it.
  std::vector<double> load_capacitance;
  /// AnalysisFault bits per node. Empty (the common case) when the whole
  /// tree analyzed fault-free; sized like `nodes` otherwise.
  std::vector<std::uint8_t> fault_flags;
  std::size_t fault_count = 0;  ///< nodes with any fault bit set

  [[nodiscard]] const NodeModel& at(circuit::SectionId i) const {
    return nodes.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] bool fault_free() const { return fault_count == 0; }
  [[nodiscard]] bool faulted(circuit::SectionId i) const {
    return !fault_flags.empty() && fault_flags.at(static_cast<std::size_t>(i)) != kFaultNone;
  }
};

/// Analyzes every node of the tree in O(n) (two traversals). The passes
/// run unguarded (results on a healthy tree are bitwise-unchanged); one
/// trailing guard sweep detects non-finite or negative moments and applies
/// `options.fault_policy` (default: throw util::FaultError with node
/// context — no silent NaN propagation).
TreeModel analyze(const circuit::RlcTree& tree, const AnalyzeOptions& options);
TreeModel analyze(const circuit::RlcTree& tree);

/// Same analysis over a FlatTree snapshot — identical arithmetic in
/// identical order (bitwise-equal results), but the sweeps read the
/// contiguous SoA value arrays instead of the AoS section structs with
/// their embedded name strings. This is the scalar fast path the batched
/// kernels (engine::BatchedAnalyzer) generalize to many samples.
TreeModel analyze(const circuit::FlatTree& tree, const AnalyzeOptions& options);
TreeModel analyze(const circuit::FlatTree& tree);

/// Re-analyzes one set of element values over a fixed FlatTree topology,
/// writing into a caller-owned `model` (resized as needed, allocation-free
/// once warm). `resistance`/`inductance`/`capacitance` are arrays of
/// length `topology.size()`; the topology's own stored values are
/// ignored. This is the sweep-loop form of analyze(FlatTree): when the
/// same tree is re-analyzed with many value sets (parameter sweeps, the
/// scalar baseline of bench/batched_throughput), it skips the per-call
/// FlatTree rebuild and result allocation while staying bitwise-equal to
/// analyze(FlatTree) on a tree holding those values.
void analyze_values(const circuit::FlatTree& topology, const double* resistance,
                    const double* inductance, const double* capacitance, TreeModel& model,
                    const AnalyzeOptions& options = {});

/// Result-returning forms of analyze() — same arithmetic, same fault
/// policies, but an empty tree or a kThrow-policy fault comes back as a
/// structured Status instead of an exception. These are the entry points
/// the corpus layer (sta::analyze_corpus_checked) and other callers that
/// must not unwind across worker threads use; the throwing overloads above
/// remain the exception-compatible shims.
[[nodiscard]] util::Result<TreeModel> analyze_checked(const circuit::RlcTree& tree,
                                                      const AnalyzeOptions& options = {});
[[nodiscard]] util::Result<TreeModel> analyze_checked(const circuit::FlatTree& tree,
                                                      const AnalyzeOptions& options = {});

/// Cost accounting of one whole-tree analysis.
struct AnalyzeStats {
  std::uint64_t multiplications = 0;  ///< FP multiplies in the two passes
  std::size_t nodes = 0;              ///< sections analyzed
  std::size_t faulted_nodes = 0;      ///< nodes the guard sweep flagged
};

/// Model plus its cost accounting, for the instrumented entry point.
struct CountedAnalysis {
  TreeModel model;
  AnalyzeStats stats;
};

/// Instrumented variant returning the multiplication count alongside the
/// model, to verify the Appendix claim that the count is exactly
/// 2·(sections).
CountedAnalysis analyze_counting(const circuit::RlcTree& tree,
                                 const AnalyzeOptions& options = {});

}  // namespace relmore::eed
