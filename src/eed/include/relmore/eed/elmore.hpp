#pragma once

/// \file elmore.hpp
/// The RC baselines the paper generalizes: the Elmore delay [15] (first
/// moment as the delay itself) and the Wyatt approximation [16] (first
/// moment as a single-pole time constant, delay = ln2 * tau). For RLC
/// trees both ignore inductance entirely — that gap is the paper's
/// motivation, and these are the baselines every figure bench prints.

#include <vector>

#include "relmore/circuit/rlc_tree.hpp"

namespace relmore::eed {

/// Elmore time constants tau_i = sum_k C_k R_ki for every node, O(n).
[[nodiscard]] std::vector<double> elmore_time_constants(const circuit::RlcTree& tree);

/// Elmore's original 50% delay estimate: the time constant itself.
[[nodiscard]] double elmore_delay_50(double tau);

/// Wyatt's single-pole 50% delay: ln2 * tau.
[[nodiscard]] double wyatt_delay_50(double tau);

/// Wyatt's single-pole 10-90% rise time: ln9 * tau.
[[nodiscard]] double wyatt_rise_time(double tau);

/// Wyatt single-pole step response 1 - e^{-t/tau} scaled by v_supply.
[[nodiscard]] double wyatt_step_response(double tau, double t, double v_supply = 1.0);

}  // namespace relmore::eed
