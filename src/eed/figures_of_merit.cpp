#include "relmore/eed/figures_of_merit.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "relmore/eed/model.hpp"

namespace relmore::eed {

InductanceFiguresOfMerit assess_line(double total_r, double total_l, double total_c,
                                     double rise_seconds) {
  if (total_l <= 0.0 || total_c <= 0.0) {
    throw std::invalid_argument("assess_line: need positive L and C totals");
  }
  if (total_r < 0.0 || rise_seconds < 0.0) {
    throw std::invalid_argument("assess_line: negative R or rise time");
  }
  InductanceFiguresOfMerit out;
  out.edge_ratio = rise_seconds / (2.0 * std::sqrt(total_l * total_c));
  out.damping_ratio = total_r / 2.0 * std::sqrt(total_c / total_l);
  out.inductance_matters = out.edge_ratio < 1.0 && out.damping_ratio < 1.0;
  return out;
}

InductanceFiguresOfMerit assess_wire(const circuit::WireSpec& wire, double rise_seconds) {
  if (wire.length_m <= 0.0) throw std::invalid_argument("assess_wire: non-positive length");
  return assess_line(wire.r_per_m * wire.length_m, wire.l_per_m * wire.length_m,
                     wire.c_per_m * wire.length_m, rise_seconds);
}

InductanceFiguresOfMerit assess_tree(const circuit::RlcTree& tree, double rise_seconds) {
  if (tree.empty()) throw std::invalid_argument("assess_tree: empty tree");
  // Most remote sink = largest Elmore constant; use its path totals plus
  // the tree's full capacitive load (conservative for branching loads).
  const TreeModel model = analyze(tree);
  circuit::SectionId worst = tree.leaves().front();
  for (circuit::SectionId s : tree.leaves()) {
    if (model.at(s).sum_rc > model.at(worst).sum_rc) worst = s;
  }
  double path_r = 0.0;
  double path_l = 0.0;
  for (circuit::SectionId j : tree.path_from_input(worst)) {
    path_r += tree.section(j).v.resistance;
    path_l += tree.section(j).v.inductance;
  }
  if (path_l <= 0.0) {
    // Pure-RC path: inductance trivially does not matter; report the
    // damping ratio as infinite (fully damped).
    InductanceFiguresOfMerit out;
    out.edge_ratio = std::numeric_limits<double>::infinity();
    out.damping_ratio = std::numeric_limits<double>::infinity();
    out.inductance_matters = false;
    return out;
  }
  return assess_line(path_r, path_l, tree.total_capacitance(), rise_seconds);
}

}  // namespace relmore::eed
