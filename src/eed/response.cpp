#include "relmore/eed/response.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "relmore/eed/second_order.hpp"
#include "relmore/util/integrate.hpp"

namespace relmore::eed {

namespace {

using Complex = std::complex<double>;

bool is_rc_limit(const NodeModel& node) { return !std::isfinite(node.omega_n); }

/// Poles of the node's second-order transfer function, separated if they
/// coincide (simple-pole partial fractions then remain valid to rounding).
std::pair<Complex, Complex> node_poles(const NodeModel& node) {
  double zeta = node.zeta;
  if (std::abs(zeta - 1.0) < 1e-7) zeta = 1.0 + 1e-7;  // split the double pole
  const Complex disc = std::sqrt(Complex(zeta * zeta - 1.0, 0.0));
  const Complex p1 = node.omega_n * (-zeta + disc);
  const Complex p2 = node.omega_n * (-zeta - disc);
  return {p1, p2};
}

}  // namespace

double step_response(const NodeModel& node, double t, double v_supply) {
  if (t <= 0.0) return 0.0;
  if (is_rc_limit(node)) {
    return v_supply * -std::expm1(-t / node.sum_rc);  // Wyatt single-pole limit
  }
  return v_supply * scaled_step_response(node.zeta, node.omega_n * t);
}

double exp_input_response(const NodeModel& node, double t, double v_supply, double tau) {
  if (tau <= 0.0) throw std::invalid_argument("exp_input_response: tau must be positive");
  if (t <= 0.0) return 0.0;
  if (is_rc_limit(node)) {
    // Single-pole system 1/(1 + sT) driven by V(1 - e^{-t/tau}).
    const double T = node.sum_rc;
    if (std::abs(T - tau) < 1e-12 * std::max(T, tau)) {
      return v_supply * (1.0 - std::exp(-t / T) * (1.0 + t / T));
    }
    return v_supply *
           (1.0 - (T * std::exp(-t / T) - tau * std::exp(-t / tau)) / (T - tau));
  }
  // Partial fractions of  H(s) V (1/s - 1/(s + a)),  a = 1/tau,
  // H(s) = wn^2 / ((s - p1)(s - p2))  (paper eqs. 44-48).
  auto [p1, p2] = node_poles(node);
  double a = 1.0 / tau;
  // Keep -a away from the poles (pole/zero collision => resonant term);
  // a tiny perturbation changes the waveform by O(1e-9).
  const double sep = std::min(std::abs(p1 + a), std::abs(p2 + a));
  if (sep < 1e-9 * node.omega_n) a *= 1.0 + 1e-7;

  const double wn2 = node.omega_n * node.omega_n;
  const Complex r1 = wn2 / (p1 * (p1 - p2));           // H/s residue at p1
  const Complex r2 = wn2 / (p2 * (p2 - p1));           // H/s residue at p2
  const Complex q0 = wn2 / ((-a - p1) * (-a - p2));    // H/(s+a) residue at -a
  const Complex q1 = wn2 / ((p1 + a) * (p1 - p2));     // H/(s+a) residue at p1
  const Complex q2 = wn2 / ((p2 + a) * (p2 - p1));     // H/(s+a) residue at p2

  const Complex e1 = std::exp(p1 * t);
  const Complex e2 = std::exp(p2 * t);
  const double ea = std::exp(-a * t);
  const Complex v = 1.0 + (r1 - q1) * e1 + (r2 - q2) * e2 - q0 * ea;
  return v_supply * v.real();
}

sim::Waveform step_waveform(const NodeModel& node, const std::vector<double>& times,
                            double v_supply) {
  std::vector<double> v(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) v[i] = step_response(node, times[i], v_supply);
  return sim::Waveform(times, v);
}

sim::Waveform exp_input_waveform(const NodeModel& node, const std::vector<double>& times,
                                 double v_supply, double tau) {
  std::vector<double> v(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    v[i] = exp_input_response(node, times[i], v_supply, tau);
  }
  return sim::Waveform(times, v);
}

namespace {

/// S(t) = integral from 0 to t of the unit step response. The step
/// response is 1 + r1 e^{p1 t} + r2 e^{p2 t} with r_i the residues of
/// H(s)/s, so S(t) = t + sum_i (r_i/p_i)(e^{p_i t} - 1).
double integrated_step_response(const NodeModel& node, double t) {
  if (t <= 0.0) return 0.0;
  if (is_rc_limit(node)) {
    const double T = node.sum_rc;
    return t - T * -std::expm1(-t / T);
  }
  auto [p1, p2] = node_poles(node);
  const double wn2 = node.omega_n * node.omega_n;
  const Complex r1 = wn2 / (p1 * (p1 - p2));
  const Complex r2 = wn2 / (p2 * (p2 - p1));
  const Complex acc =
      r1 / p1 * (std::exp(p1 * t) - 1.0) + r2 / p2 * (std::exp(p2 * t) - 1.0);
  return t + acc.real();
}

}  // namespace

double ramp_input_response(const NodeModel& node, double t, double v_supply,
                           double rise_seconds) {
  if (rise_seconds <= 0.0) return step_response(node, t, v_supply);
  if (t <= 0.0) return 0.0;
  const double s_now = integrated_step_response(node, t);
  const double s_shift = t > rise_seconds ? integrated_step_response(node, t - rise_seconds)
                                          : 0.0;
  return v_supply / rise_seconds * (s_now - s_shift);
}

sim::Waveform ramp_input_waveform(const NodeModel& node, const std::vector<double>& times,
                                  double v_supply, double rise_seconds) {
  std::vector<double> v(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    v[i] = ramp_input_response(node, times[i], v_supply, rise_seconds);
  }
  return sim::Waveform(times, v);
}

sim::Waveform arbitrary_input_waveform(const NodeModel& node, const sim::Source& source,
                                       const std::vector<double>& times) {
  if (times.empty()) throw std::invalid_argument("arbitrary_input_waveform: no sample times");
  if (is_rc_limit(node)) {
    // First-order ODE: T v' + v = u.
    const double T = node.sum_rc;
    const util::OdeRhs rhs = [&](double t, const std::vector<double>& y,
                                 std::vector<double>& dy) {
      dy[0] = (sim::source_value(source, t) - y[0]) / T;
    };
    std::vector<double> out(times.size());
    std::vector<double> y{0.0};
    double t_prev = 0.0;
    for (std::size_t i = 0; i < times.size(); ++i) {
      y = util::integrate_ode(rhs, t_prev, std::move(y), times[i]);
      out[i] = y[0];
      t_prev = times[i];
    }
    return sim::Waveform(times, out);
  }
  const double z2w = 2.0 * node.zeta * node.omega_n;
  const double wn2 = node.omega_n * node.omega_n;
  const util::OdeRhs rhs = [&](double t, const std::vector<double>& y,
                               std::vector<double>& dy) {
    dy[0] = y[1];
    dy[1] = wn2 * (sim::source_value(source, t) - y[0]) - z2w * y[1];
  };
  std::vector<double> out(times.size());
  std::vector<double> y{0.0, 0.0};
  double t_prev = 0.0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] < t_prev) {
      throw std::invalid_argument("arbitrary_input_waveform: times must be non-decreasing");
    }
    y = util::integrate_ode(rhs, t_prev, std::move(y), times[i]);
    out[i] = y[0];
    t_prev = times[i];
  }
  return sim::Waveform(times, out);
}

}  // namespace relmore::eed
