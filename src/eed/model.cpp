#include "relmore/eed/model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace relmore::eed {

using circuit::RlcTree;
using circuit::SectionId;

namespace {

TreeModel analyze_impl(const RlcTree& tree, std::uint64_t* mul_count) {
  if (tree.empty()) throw std::invalid_argument("eed::analyze: empty tree");
  const std::size_t n = tree.size();
  TreeModel model;
  model.nodes.resize(n);
  model.load_capacitance.assign(n, 0.0);
  std::uint64_t muls = 0;

  // Upward pass (paper Fig. 17): total load capacitance per section.
  // Children have larger ids than parents, so one reverse scan suffices.
  for (std::size_t i = 0; i < n; ++i) {
    model.load_capacitance[i] = tree.section(static_cast<SectionId>(i)).v.capacitance;
  }
  for (std::size_t i = n; i-- > 0;) {
    const SectionId parent = tree.section(static_cast<SectionId>(i)).parent;
    if (parent != circuit::kInput) {
      model.load_capacitance[static_cast<std::size_t>(parent)] += model.load_capacitance[i];
    }
  }

  // Downward pass (paper Fig. 18): accumulate SR and SL along each path.
  // SR_i = SR_parent + R_i * Ctot_i ; SL_i = SL_parent + L_i * Ctot_i.
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<SectionId>(i);
    const auto& v = tree.section(id).v;
    const SectionId parent = tree.section(id).parent;
    const double sr_up = parent == circuit::kInput
                             ? 0.0
                             : model.nodes[static_cast<std::size_t>(parent)].sum_rc;
    const double sl_up = parent == circuit::kInput
                             ? 0.0
                             : model.nodes[static_cast<std::size_t>(parent)].sum_lc;
    NodeModel& nm = model.nodes[i];
    nm.sum_rc = sr_up + v.resistance * model.load_capacitance[i];
    nm.sum_lc = sl_up + v.inductance * model.load_capacitance[i];
    muls += 2;

    if (nm.sum_lc > 0.0) {
      const double root = std::sqrt(nm.sum_lc);
      nm.omega_n = 1.0 / root;
      nm.zeta = nm.sum_rc / (2.0 * root);
    } else {
      // Pure-RC node: the second-order model degenerates to the Elmore
      // (Wyatt) single-pole model, i.e. the zeta -> inf limit.
      nm.omega_n = std::numeric_limits<double>::infinity();
      nm.zeta = std::numeric_limits<double>::infinity();
    }
  }

  if (mul_count != nullptr) *mul_count = muls;
  return model;
}

}  // namespace

TreeModel analyze(const RlcTree& tree) { return analyze_impl(tree, nullptr); }

TreeModel analyze(const circuit::FlatTree& tree) {
  if (tree.empty()) throw std::invalid_argument("eed::analyze: empty tree");
  const std::size_t n = tree.size();
  const SectionId* parent = tree.parent().data();
  const double* r = tree.resistance().data();
  const double* l = tree.inductance().data();
  const double* c = tree.capacitance().data();
  TreeModel model;
  model.nodes.resize(n);
  model.load_capacitance.assign(c, c + n);

  for (std::size_t i = n; i-- > 0;) {
    if (parent[i] != circuit::kInput) {
      model.load_capacitance[static_cast<std::size_t>(parent[i])] += model.load_capacitance[i];
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const SectionId p = parent[i];
    const double sr_up = p == circuit::kInput ? 0.0 : model.nodes[static_cast<std::size_t>(p)].sum_rc;
    const double sl_up = p == circuit::kInput ? 0.0 : model.nodes[static_cast<std::size_t>(p)].sum_lc;
    NodeModel& nm = model.nodes[i];
    nm.sum_rc = sr_up + r[i] * model.load_capacitance[i];
    nm.sum_lc = sl_up + l[i] * model.load_capacitance[i];
    if (nm.sum_lc > 0.0) {
      const double root = std::sqrt(nm.sum_lc);
      nm.omega_n = 1.0 / root;
      nm.zeta = nm.sum_rc / (2.0 * root);
    } else {
      nm.omega_n = std::numeric_limits<double>::infinity();
      nm.zeta = std::numeric_limits<double>::infinity();
    }
  }
  return model;
}

CountedAnalysis analyze_counting(const RlcTree& tree) {
  CountedAnalysis out;
  out.model = analyze_impl(tree, &out.stats.multiplications);
  out.stats.nodes = tree.size();
  return out;
}

}  // namespace relmore::eed
