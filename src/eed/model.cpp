#include "relmore/eed/model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace relmore::eed {

using circuit::RlcTree;
using circuit::SectionId;
using util::ErrorCode;
using util::FaultPolicy;

namespace {

/// Fault classification of one node's computed moments. Uses the single
/// composite predicate `valid_element_value` so NaN (all comparisons
/// false) registers as non-finite.
std::uint8_t classify(const NodeModel& nm, double ctot) {
  std::uint8_t flags = kFaultNone;
  for (const double v : {nm.sum_rc, nm.sum_lc, ctot}) {
    if (util::valid_element_value(v)) continue;
    flags |= std::isnan(v) || std::isinf(v) ? kFaultNonFiniteMoment : kFaultNegativeMoment;
  }
  return flags;
}

/// Applies the fault policy given the detection verdict the analysis loops
/// accumulated in-flight: `lowest` is the running min over every SR/SL/Ctot
/// (catches negatives), `poison` is Σ SR·0 + SL·0 (0.0 on an all-finite
/// model, NaN otherwise — a min alone would let NaN slide through, since
/// every comparison against NaN is false; and a non-finite Ctot always
/// poisons that node's SR, so the two moment terms suffice). Accumulating
/// inside the existing downward pass costs nothing measurable — the
/// detection ops are independent of the per-node sqrt/divide latency chain
/// — and never touches the model arithmetic, keeping healthy results
/// bitwise-unchanged.
void apply_guards(TreeModel& model, FaultPolicy policy, const char* entry, double lowest,
                  double poison) {
  if (lowest >= 0.0 && !std::isnan(poison)) return;
  const std::size_t n = model.nodes.size();

  // Slow path: something is degenerate — classify per node.
  model.fault_flags.assign(n, kFaultNone);
  for (std::size_t i = 0; i < n; ++i) {
    NodeModel& nm = model.nodes[i];
    const std::uint8_t flags = classify(nm, model.load_capacitance[i]);
    if (flags == kFaultNone) continue;
    if (policy == FaultPolicy::kThrow) {
      throw util::FaultError(util::Status(
          (flags & kFaultNonFiniteMoment) != 0 ? ErrorCode::kNonFiniteMoment
                                               : ErrorCode::kNegativeMoment,
          std::string(entry) + ": degenerate moments at node " + std::to_string(i) +
              " (SR=" + std::to_string(nm.sum_rc) + ", SL=" + std::to_string(nm.sum_lc) +
              ", Ctot=" + std::to_string(model.load_capacitance[i]) + ")",
          static_cast<int>(i)));
    }
    model.fault_flags[i] = flags;
    ++model.fault_count;
    if (policy == FaultPolicy::kClampAndFlag) {
      // Nearest valid limit: a degenerate moment collapses to the
      // RC/Elmore degenerate case (SL = 0 -> zeta, omega_n -> inf).
      if (!util::valid_element_value(nm.sum_rc)) nm.sum_rc = 0.0;
      if (!util::valid_element_value(nm.sum_lc)) nm.sum_lc = 0.0;
      if (!util::valid_element_value(model.load_capacitance[i])) {
        model.load_capacitance[i] = 0.0;
      }
      if (nm.sum_lc > 0.0) {
        const double root = std::sqrt(nm.sum_lc);
        nm.omega_n = 1.0 / root;
        nm.zeta = nm.sum_rc / (2.0 * root);
      } else {
        nm.omega_n = std::numeric_limits<double>::infinity();
        nm.zeta = std::numeric_limits<double>::infinity();
      }
    }
    // kSkipAndFlag: leave the poisoned values; the flag is the signal.
  }
}

TreeModel analyze_impl(const RlcTree& tree, std::uint64_t* mul_count, FaultPolicy policy,
                       const char* entry) {
  if (tree.empty()) throw std::invalid_argument("eed::analyze: empty tree");
  const std::size_t n = tree.size();
  TreeModel model;
  model.nodes.resize(n);
  model.load_capacitance.assign(n, 0.0);
  std::uint64_t muls = 0;

  // Upward pass (paper Fig. 17): total load capacitance per section.
  // Children have larger ids than parents, so one reverse scan suffices.
  for (std::size_t i = 0; i < n; ++i) {
    model.load_capacitance[i] = tree.section(static_cast<SectionId>(i)).v.capacitance;
  }
  for (std::size_t i = n; i-- > 0;) {
    const SectionId parent = tree.section(static_cast<SectionId>(i)).parent;
    if (parent != circuit::kInput) {
      model.load_capacitance[static_cast<std::size_t>(parent)] += model.load_capacitance[i];
    }
  }

  // Downward pass (paper Fig. 18): accumulate SR and SL along each path.
  // SR_i = SR_parent + R_i * Ctot_i ; SL_i = SL_parent + L_i * Ctot_i.
  // `lowest`/`poison` piggy-back the guard detection (see apply_guards);
  // they read the freshly computed values and write nothing back.
  double lowest = 0.0;
  double poison = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<SectionId>(i);
    const auto& v = tree.section(id).v;
    const SectionId parent = tree.section(id).parent;
    const double sr_up = parent == circuit::kInput
                             ? 0.0
                             : model.nodes[static_cast<std::size_t>(parent)].sum_rc;
    const double sl_up = parent == circuit::kInput
                             ? 0.0
                             : model.nodes[static_cast<std::size_t>(parent)].sum_lc;
    NodeModel& nm = model.nodes[i];
    nm.sum_rc = sr_up + v.resistance * model.load_capacitance[i];
    nm.sum_lc = sl_up + v.inductance * model.load_capacitance[i];
    muls += 2;
    lowest = std::min(lowest, std::min(nm.sum_rc, std::min(nm.sum_lc, model.load_capacitance[i])));
    poison += nm.sum_rc * 0.0 + nm.sum_lc * 0.0;

    if (nm.sum_lc > 0.0) {
      const double root = std::sqrt(nm.sum_lc);
      nm.omega_n = 1.0 / root;
      nm.zeta = nm.sum_rc / (2.0 * root);
    } else {
      // Pure-RC node: the second-order model degenerates to the Elmore
      // (Wyatt) single-pole model, i.e. the zeta -> inf limit.
      nm.omega_n = std::numeric_limits<double>::infinity();
      nm.zeta = std::numeric_limits<double>::infinity();
    }
  }

  if (mul_count != nullptr) *mul_count = muls;
  apply_guards(model, policy, entry, lowest, poison);
  return model;
}

}  // namespace

TreeModel analyze(const RlcTree& tree, const AnalyzeOptions& options) {
  return analyze_impl(tree, nullptr, options.fault_policy, "eed::analyze");
}

TreeModel analyze(const RlcTree& tree) { return analyze(tree, AnalyzeOptions{}); }

namespace {

/// The two FlatTree moment passes over caller-supplied value arrays,
/// writing into a reused `model`. Shared by analyze(FlatTree) and
/// analyze_values; same arithmetic in the same order as analyze(RlcTree),
/// so every entry stays bitwise-equal.
void analyze_arrays(std::size_t n, const SectionId* parent, const double* r, const double* l,
                    const double* c, TreeModel& model, FaultPolicy policy, const char* entry) {
  model.nodes.resize(n);
  model.load_capacitance.assign(c, c + n);
  model.fault_flags.clear();
  model.fault_count = 0;

  for (std::size_t i = n; i-- > 0;) {
    if (parent[i] != circuit::kInput) {
      model.load_capacitance[static_cast<std::size_t>(parent[i])] += model.load_capacitance[i];
    }
  }

  double lowest = 0.0;
  double poison = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const SectionId p = parent[i];
    const double sr_up = p == circuit::kInput ? 0.0 : model.nodes[static_cast<std::size_t>(p)].sum_rc;
    const double sl_up = p == circuit::kInput ? 0.0 : model.nodes[static_cast<std::size_t>(p)].sum_lc;
    NodeModel& nm = model.nodes[i];
    nm.sum_rc = sr_up + r[i] * model.load_capacitance[i];
    nm.sum_lc = sl_up + l[i] * model.load_capacitance[i];
    lowest = std::min(lowest, std::min(nm.sum_rc, std::min(nm.sum_lc, model.load_capacitance[i])));
    poison += nm.sum_rc * 0.0 + nm.sum_lc * 0.0;
    if (nm.sum_lc > 0.0) {
      const double root = std::sqrt(nm.sum_lc);
      nm.omega_n = 1.0 / root;
      nm.zeta = nm.sum_rc / (2.0 * root);
    } else {
      nm.omega_n = std::numeric_limits<double>::infinity();
      nm.zeta = std::numeric_limits<double>::infinity();
    }
  }
  apply_guards(model, policy, entry, lowest, poison);
}

}  // namespace

TreeModel analyze(const circuit::FlatTree& tree, const AnalyzeOptions& options) {
  if (tree.empty()) throw std::invalid_argument("eed::analyze: empty tree");
  TreeModel model;
  analyze_arrays(tree.size(), tree.parent().data(), tree.resistance().data(),
                 tree.inductance().data(), tree.capacitance().data(), model,
                 options.fault_policy, "eed::analyze(FlatTree)");
  return model;
}

TreeModel analyze(const circuit::FlatTree& tree) { return analyze(tree, AnalyzeOptions{}); }

void analyze_values(const circuit::FlatTree& topology, const double* resistance,
                    const double* inductance, const double* capacitance, TreeModel& model,
                    const AnalyzeOptions& options) {
  if (topology.empty()) throw std::invalid_argument("eed::analyze_values: empty tree");
  analyze_arrays(topology.size(), topology.parent().data(), resistance, inductance, capacitance,
                 model, options.fault_policy, "eed::analyze_values");
}

namespace {

/// Shared catch logic for the _checked entries: FaultError already carries
/// a structured Status; the legacy empty-tree invalid_argument maps to
/// kInvalidArgument (the tree never reached the moment passes).
template <typename Tree>
util::Result<TreeModel> analyze_checked_impl(const Tree& tree, const AnalyzeOptions& options) {
  if (tree.empty()) {
    return util::Status(ErrorCode::kEmptyTree, "eed::analyze_checked: empty tree");
  }
  try {
    return analyze(tree, options);
  } catch (const util::FaultError& e) {
    return e.status();
  } catch (const std::invalid_argument& e) {
    return util::Status(ErrorCode::kInvalidArgument, e.what());
  }
}

}  // namespace

util::Result<TreeModel> analyze_checked(const RlcTree& tree, const AnalyzeOptions& options) {
  return analyze_checked_impl(tree, options);
}

util::Result<TreeModel> analyze_checked(const circuit::FlatTree& tree,
                                        const AnalyzeOptions& options) {
  return analyze_checked_impl(tree, options);
}

CountedAnalysis analyze_counting(const RlcTree& tree, const AnalyzeOptions& options) {
  CountedAnalysis out;
  out.model =
      analyze_impl(tree, &out.stats.multiplications, options.fault_policy, "eed::analyze_counting");
  out.stats.nodes = tree.size();
  out.stats.faulted_nodes = out.model.fault_count;
  return out;
}

}  // namespace relmore::eed
