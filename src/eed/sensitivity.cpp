#include "relmore/eed/sensitivity.hpp"

#include <cmath>
#include <stdexcept>

#include "relmore/eed/second_order.hpp"

namespace relmore::eed {

using circuit::RlcTree;
using circuit::SectionId;

double scaled_delay_fitted_derivative(double zeta) {
  const FitCoefficients f = delay_fit_paper();
  return -f.a / f.b * std::exp(-zeta / f.b) + f.c;
}

SensitivityReport delay_sensitivity(const RlcTree& tree, SectionId node) {
  const TreeModel model = analyze(tree);
  const NodeModel& nm = model.at(node);
  const std::size_t n = tree.size();

  SensitivityReport rep;
  rep.node = node;
  rep.delay = delay_50(nm);
  rep.sections.assign(n, {});

  // Common-path prefix sums: for every section k, the resistance and
  // inductance shared by path(node) and path(k) is the prefix of
  // path(node) up to the divergence point. anchor[k] propagates the
  // divergence prefix downward in one id-ordered pass (parents first).
  const auto path = tree.path_from_input(node);
  std::vector<double> r_common(n, 0.0);
  std::vector<double> l_common(n, 0.0);
  {
    std::vector<char> on_path(n, 0);
    std::vector<double> r_prefix(n, 0.0);
    std::vector<double> l_prefix(n, 0.0);
    double r_acc = 0.0;
    double l_acc = 0.0;
    for (SectionId j : path) {
      r_acc += tree.section(j).v.resistance;
      l_acc += tree.section(j).v.inductance;
      on_path[static_cast<std::size_t>(j)] = 1;
      r_prefix[static_cast<std::size_t>(j)] = r_acc;
      l_prefix[static_cast<std::size_t>(j)] = l_acc;
    }
    for (std::size_t k = 0; k < n; ++k) {
      if (on_path[k] != 0) {
        r_common[k] = r_prefix[k];
        l_common[k] = l_prefix[k];
      } else {
        const SectionId parent = tree.section(static_cast<SectionId>(k)).parent;
        if (parent != circuit::kInput) {
          r_common[k] = r_common[static_cast<std::size_t>(parent)];
          l_common[k] = l_common[static_cast<std::size_t>(parent)];
        }
        // Root sections off the path share nothing: common stays 0.
      }
    }
  }

  const bool rc_limit = !(nm.sum_lc > 0.0);
  double d_dsr;  // d(delay)/d(SR)
  double d_dsl;  // d(delay)/d(SL)
  if (rc_limit) {
    // Wyatt limit: D = ln2 * SR. Inductance sensitivities are zero in the
    // strict limit (the fitted model only sees L through SL > 0).
    d_dsr = std::log(2.0);
    d_dsl = 0.0;
  } else {
    const double root_sl = std::sqrt(nm.sum_lc);
    const double tp = scaled_delay_fitted(nm.zeta);
    const double dtp = scaled_delay_fitted_derivative(nm.zeta);
    // D = t'(zeta) * sqrt(SL); zeta = SR / (2 sqrt(SL)).
    d_dsr = dtp / 2.0;
    d_dsl = -dtp * nm.sum_rc / (4.0 * nm.sum_lc) + tp / (2.0 * root_sl);
  }

  // Chain rule through the path sums:
  //   dSR/dR_k = Ctot_k for k on path(node), else 0; same for L;
  //   dSR/dC_k = R_common(k), dSL/dC_k = L_common(k) for every k.
  std::vector<char> on_path(n, 0);
  for (SectionId j : path) on_path[static_cast<std::size_t>(j)] = 1;
  for (std::size_t k = 0; k < n; ++k) {
    SectionSensitivity& s = rep.sections[k];
    if (on_path[k] != 0) {
      const double load = model.load_capacitance[k];
      s.d_resistance = d_dsr * load;
      s.d_inductance = d_dsl * load;
    }
    s.d_capacitance = d_dsr * r_common[k] + d_dsl * l_common[k];
  }
  return rep;
}

}  // namespace relmore::eed
