#include "relmore/eed/frequency.hpp"

#include <cmath>
#include <stdexcept>

namespace relmore::eed {

namespace {

bool is_rc_limit(const NodeModel& node) { return !std::isfinite(node.omega_n); }

}  // namespace

std::complex<double> transfer_function(const NodeModel& node, double omega) {
  if (omega < 0.0) throw std::invalid_argument("transfer_function: negative frequency");
  if (is_rc_limit(node)) {
    return 1.0 / std::complex<double>(1.0, omega * node.sum_rc);
  }
  const double x = omega / node.omega_n;  // normalized frequency
  return 1.0 / std::complex<double>(1.0 - x * x, 2.0 * node.zeta * x);
}

double magnitude_db(const NodeModel& node, double omega) {
  return 20.0 * std::log10(std::abs(transfer_function(node, omega)));
}

double phase_deg(const NodeModel& node, double omega) {
  const std::complex<double> h = transfer_function(node, omega);
  double deg = std::arg(h) * 180.0 / M_PI;
  // A stable low-pass accumulates up to -180 degrees; atan2 wraps the
  // second-order branch into (0, 180] — unwrap to the causal branch.
  if (deg > 0.0) deg -= 360.0;
  return deg;
}

std::vector<BodePoint> bode_sweep(const NodeModel& node, double omega_lo, double omega_hi,
                                  int points) {
  if (points < 2 || omega_lo <= 0.0 || omega_hi <= omega_lo) {
    throw std::invalid_argument("bode_sweep: bad sweep parameters");
  }
  std::vector<BodePoint> out(static_cast<std::size_t>(points));
  const double ratio = std::log(omega_hi / omega_lo);
  for (int i = 0; i < points; ++i) {
    const double w =
        omega_lo * std::exp(ratio * static_cast<double>(i) / static_cast<double>(points - 1));
    out[static_cast<std::size_t>(i)] = {w, magnitude_db(node, w), phase_deg(node, w)};
  }
  return out;
}

bool has_resonant_peak(const NodeModel& node) {
  return !is_rc_limit(node) && node.zeta < M_SQRT1_2;
}

double peak_frequency(const NodeModel& node) {
  if (!has_resonant_peak(node)) {
    throw std::invalid_argument("peak_frequency: node has no resonant peak");
  }
  return node.omega_n * std::sqrt(1.0 - 2.0 * node.zeta * node.zeta);
}

double peak_magnitude(const NodeModel& node) {
  if (!has_resonant_peak(node)) {
    throw std::invalid_argument("peak_magnitude: node has no resonant peak");
  }
  return 1.0 / (2.0 * node.zeta * std::sqrt(1.0 - node.zeta * node.zeta));
}

double bandwidth_3db(const NodeModel& node) {
  if (is_rc_limit(node)) return 1.0 / node.sum_rc;
  const double a = 1.0 - 2.0 * node.zeta * node.zeta;
  return node.omega_n * std::sqrt(a + std::sqrt(a * a + 1.0));
}

}  // namespace relmore::eed
