#include "relmore/eed/second_order.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "relmore/util/roots.hpp"

namespace relmore::eed {

namespace {

constexpr double kLn2 = 0.6931471805599453;
constexpr double kLn9 = 2.1972245773362196;
constexpr double kCriticalTol = 1e-7;

}  // namespace

double scaled_step_response(double zeta, double t_scaled) {
  if (zeta < 0.0) throw std::invalid_argument("scaled_step_response: zeta must be >= 0");
  if (t_scaled <= 0.0) return 0.0;
  const double t = t_scaled;
  if (std::abs(zeta - 1.0) <= kCriticalTol) {
    // Critically damped: v = 1 - (1 + t) e^{-t}.
    return 1.0 - (1.0 + t) * std::exp(-t);
  }
  if (zeta < 1.0) {
    // Underdamped (paper eq. 31): v = 1 - e^{-zt}[cos(wd t) + z sin(wd t)/wd].
    const double wd = std::sqrt(1.0 - zeta * zeta);
    return 1.0 -
           std::exp(-zeta * t) * (std::cos(wd * t) + zeta * std::sin(wd * t) / wd);
  }
  // Overdamped, written in the cancellation-free cosh/sinh form:
  // v = 1 - e^{-zt}[cosh(d t) + z sinh(d t)/d],  d = sqrt(z^2 - 1).
  const double d = std::sqrt(zeta * zeta - 1.0);
  // Avoid overflow for large arguments: combine exponents analytically.
  const double x = d * t;
  if (x > 30.0) {
    // cosh/sinh ~ e^x/2; v = 1 - 0.5 (1 + z/d) e^{(d - z) t} (minus a
    // negligible e^{-(d+z)t} term).
    return 1.0 - 0.5 * (1.0 + zeta / d) * std::exp((d - zeta) * t);
  }
  return 1.0 - std::exp(-zeta * t) * (std::cosh(x) + zeta * std::sinh(x) / d);
}

double scaled_step_derivative(double zeta, double t_scaled) {
  if (zeta < 0.0) throw std::invalid_argument("scaled_step_derivative: zeta must be >= 0");
  if (t_scaled <= 0.0) return 0.0;
  const double t = t_scaled;
  if (std::abs(zeta - 1.0) <= kCriticalTol) return t * std::exp(-t);
  if (zeta < 1.0) {
    const double wd = std::sqrt(1.0 - zeta * zeta);
    return std::exp(-zeta * t) * std::sin(wd * t) / wd;
  }
  const double d = std::sqrt(zeta * zeta - 1.0);
  const double x = d * t;
  if (x > 30.0) return 0.5 / d * std::exp((d - zeta) * t);
  return std::exp(-zeta * t) * std::sinh(x) / d;
}

double scaled_crossing_exact(double zeta, double fraction) {
  if (fraction <= 0.0 || fraction >= 1.0) {
    throw std::invalid_argument("scaled_crossing_exact: fraction must be in (0, 1)");
  }
  const auto f = [&](double t) { return scaled_step_response(zeta, t) - fraction; };
  // The response rises monotonically to its first extremum (>= 1 when
  // underdamped, -> 1 when overdamped), so the first crossing exists and a
  // forward bracket search finds it.
  const auto root = util::find_root_forward(f, 0.0, 0.25, 1.6, 400);
  if (!root) throw std::runtime_error("scaled_crossing_exact: bracket search failed");
  return *root;
}

double scaled_delay_exact(double zeta) { return scaled_crossing_exact(zeta, 0.5); }

double scaled_rise_exact(double zeta) {
  return scaled_crossing_exact(zeta, 0.9) - scaled_crossing_exact(zeta, 0.1);
}

double FitCoefficients::operator()(double zeta) const {
  const double zp = p == 1.0 ? zeta : std::pow(zeta, p);
  return a * std::exp(-zp / b) + c * zeta + d;
}

FitCoefficients delay_fit_paper() { return {1.047, 0.85, 1.39, 1.0, 0.0}; }

FitCoefficients rise_fit_refit() {
  // Least-squares refit against scaled_rise_exact() on zeta in [0, 3]
  // (the paper's eq. 34 digits were lost; see DESIGN.md §4). The values
  // below are the output of fit_scaled_rise() — bench/fig06 re-derives
  // them and the Fit.RiseRefitMatchesStoredCoefficients test pins them.
  return {2.32803, 0.22199, 4.73853, 1.56310, -1.30843};
}

double scaled_delay_fitted(double zeta) { return delay_fit_paper()(zeta); }

double scaled_rise_fitted(double zeta) {
  // The refit covers its fitted domain zeta in [0, 3]. Beyond it the exact
  // curve approaches its RC asymptote like -1/zeta, which the fitted form
  // cannot track; the dominant-pole closed form ln9*(zeta + sqrt(zeta^2-1))
  // is within 0.03% there (and reduces exactly to the Wyatt rise time
  // ln9 * sum_rc as zeta -> inf). Seam mismatch at zeta = 3 is < 0.8%.
  if (zeta > 3.0) return kLn9 * (zeta + std::sqrt(zeta * zeta - 1.0));
  return rise_fit_refit()(zeta);
}

namespace {

bool is_rc_limit(const NodeModel& node) { return !std::isfinite(node.omega_n); }

}  // namespace

double delay_50(const NodeModel& node) {
  if (is_rc_limit(node)) return kLn2 * node.sum_rc;
  return scaled_delay_fitted(node.zeta) / node.omega_n;
}

double delay_50_exact(const NodeModel& node) {
  if (is_rc_limit(node)) return kLn2 * node.sum_rc;
  return scaled_delay_exact(node.zeta) / node.omega_n;
}

double rise_time(const NodeModel& node) {
  if (is_rc_limit(node)) return kLn9 * node.sum_rc;
  return scaled_rise_fitted(node.zeta) / node.omega_n;
}

double rise_time_exact(const NodeModel& node) {
  if (is_rc_limit(node)) return kLn9 * node.sum_rc;
  return scaled_rise_exact(node.zeta) / node.omega_n;
}

double overshoot_pct(const NodeModel& node, int n) {
  if (n < 1) throw std::invalid_argument("overshoot_pct: n must be >= 1");
  if (!(node.zeta < 1.0)) {
    throw std::invalid_argument("overshoot_pct: node is not underdamped");
  }
  const double wd = std::sqrt(1.0 - node.zeta * node.zeta);
  return 100.0 * std::exp(-static_cast<double>(n) * M_PI * node.zeta / wd);
}

double overshoot_time(const NodeModel& node, int n) {
  if (n < 1) throw std::invalid_argument("overshoot_time: n must be >= 1");
  if (!(node.zeta < 1.0)) {
    throw std::invalid_argument("overshoot_time: node is not underdamped");
  }
  const double wd = std::sqrt(1.0 - node.zeta * node.zeta);
  return static_cast<double>(n) * M_PI / (node.omega_n * wd);
}

double settling_time(const NodeModel& node, double band) {
  if (band <= 0.0 || band >= 1.0) {
    throw std::invalid_argument("settling_time: band must be in (0, 1)");
  }
  if (is_rc_limit(node)) return std::log(1.0 / band) * node.sum_rc;
  if (node.zeta >= 1.0) {
    // Monotone response: settled once it crosses 1 - band.
    return scaled_crossing_exact(node.zeta, 1.0 - band) / node.omega_n;
  }
  if (node.zeta <= 0.0) return std::numeric_limits<double>::infinity();
  // Paper eqs. (41)-(42): the first extremum whose excursion is below
  // `band` of the steady state; its index solves e^{-n pi z/wd} <= band.
  const double wd = std::sqrt(1.0 - node.zeta * node.zeta);
  const double n_real = wd * std::log(1.0 / band) / (M_PI * node.zeta);
  const double n = std::max(1.0, std::ceil(n_real));
  return n * M_PI / (node.omega_n * wd);
}

}  // namespace relmore::eed
