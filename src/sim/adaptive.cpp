#include "relmore/sim/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "relmore/sim/tree_stepper.hpp"

namespace relmore::sim {

using circuit::RlcTree;

TransientResult simulate_tree_adaptive(const RlcTree& tree, const Source& source,
                                       const AdaptiveOptions& opts) {
  if (tree.empty()) throw std::invalid_argument("simulate_tree_adaptive: empty tree");
  if (opts.t_stop <= 0.0 || opts.tol <= 0.0) {
    throw std::invalid_argument("simulate_tree_adaptive: t_stop and tol must be positive");
  }
  const double dt_min = opts.dt_min > 0.0 ? opts.dt_min : opts.t_stop * 1e-9;
  const double dt_max = opts.dt_max > 0.0 ? opts.dt_max : opts.t_stop / 50.0;
  if (dt_max < dt_min) {
    throw std::invalid_argument("simulate_tree_adaptive: dt_max < dt_min");
  }
  const std::size_t n = tree.size();

  TransientResult out;
  out.node_voltage.assign(n, {});
  out.time.push_back(0.0);
  for (std::size_t i = 0; i < n; ++i) out.node_voltage[i].push_back(0.0);

  TreeStepper full(tree);
  TreeStepper halves(tree);
  double h = std::clamp(dt_min * 16.0, dt_min, dt_max);
  double t = 0.0;
  // Startup damping for step discontinuities, as in the fixed-step engine.
  int be_remaining = 2;

  for (std::size_t step = 0; step < opts.max_steps; ++step) {
    if (t >= opts.t_stop) return out;
    h = std::min(h, opts.t_stop - t);
    const auto method = be_remaining > 0 ? TreeStepper::Method::kBackwardEuler
                                         : TreeStepper::Method::kTrapezoidal;

    // One full step vs two half steps from the same checkpoint.
    const TreeStepper::State checkpoint = full.state();
    full.step(h, source_value(source, t + h), method);
    halves.set_state(checkpoint);
    halves.step(0.5 * h, source_value(source, t + 0.5 * h), method);
    halves.step(0.5 * h, source_value(source, t + h), method);

    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      err = std::max(err, std::abs(full.voltages()[i] - halves.voltages()[i]));
    }

    if (err <= opts.tol || h <= dt_min * (1.0 + 1e-12)) {
      // Accept; keep the (more accurate) half-step solution.
      t += h;
      full.set_state(halves.state());
      out.time.push_back(t);
      for (std::size_t i = 0; i < n; ++i) {
        out.node_voltage[i].push_back(halves.voltages()[i]);
      }
      if (be_remaining > 0) --be_remaining;
      // Grow cautiously (2nd-order method: err ~ h^3 for TR halving).
      const double grow = err > 0.0 ? std::cbrt(opts.tol / err) : 2.0;
      h = std::clamp(h * std::clamp(0.9 * grow, 0.3, 2.0), dt_min, dt_max);
    } else {
      // Reject; shrink and retry from the checkpoint.
      full.set_state(checkpoint);
      const double shrink = std::cbrt(opts.tol / err);
      h = std::clamp(h * std::clamp(0.9 * shrink, 0.1, 0.7), dt_min, dt_max);
      if (h <= dt_min && err > 100.0 * opts.tol) {
        throw std::runtime_error(
            "simulate_tree_adaptive: cannot meet tolerance above dt_min");
      }
    }
  }
  throw std::runtime_error("simulate_tree_adaptive: max step count exceeded");
}

}  // namespace relmore::sim
