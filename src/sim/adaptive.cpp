#include "relmore/sim/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "relmore/sim/flat_stepper.hpp"

namespace relmore::sim {

using circuit::FlatTree;
using circuit::RlcTree;
using circuit::SectionId;

TransientResult simulate_tree_adaptive(const RlcTree& tree, const Source& source,
                                       const AdaptiveOptions& opts) {
  if (tree.empty()) throw std::invalid_argument("simulate_tree_adaptive: empty tree");
  return simulate_tree_adaptive(FlatTree(tree), source, opts);
}

TransientResult simulate_tree_adaptive(const FlatTree& tree, const Source& source,
                                       const AdaptiveOptions& opts) {
  if (tree.empty()) throw std::invalid_argument("simulate_tree_adaptive: empty tree");
  if (opts.t_stop <= 0.0 || opts.tol <= 0.0) {
    throw std::invalid_argument("simulate_tree_adaptive: t_stop and tol must be positive");
  }
  const double dt_min = opts.dt_min > 0.0 ? opts.dt_min : opts.t_stop * 1e-9;
  const double dt_max = opts.dt_max > 0.0 ? opts.dt_max : opts.t_stop / 50.0;
  if (dt_max < dt_min) {
    throw std::invalid_argument("simulate_tree_adaptive: dt_max < dt_min");
  }
  const std::size_t n = tree.size();
  for (const SectionId id : opts.probes) {
    if (id < 0 || static_cast<std::size_t>(id) >= n) {
      throw std::out_of_range("simulate_tree_adaptive: probe id out of range");
    }
  }
  const bool all = opts.probes.empty();
  const std::size_t rows = all ? n : opts.probes.size();

  TransientResult out;
  out.probe_ids = opts.probes;
  out.node_voltage.assign(rows, {});
  out.time.push_back(0.0);
  for (auto& v : out.node_voltage) v.push_back(0.0);

  // `accepted` holds the authoritative state; `full` and `halves` are trial
  // evolutions branched off it with step_from, so no attempt ever copies a
  // checkpoint. Each stepper keeps its own factorization cache, which means
  // the h set (in `full`) and the h/2 set (in `halves`) survive retries and
  // step-size revisits without a rebuild.
  FlatStepper accepted(tree);
  FlatStepper full(tree);
  FlatStepper halves(tree);
  double h = std::clamp(dt_min * 16.0, dt_min, dt_max);
  double t = 0.0;
  // Startup damping for step discontinuities, as in the fixed-step engine.
  int be_remaining = 2;
  // Standard step-doubling controller bounds: one factor, one clamp, for
  // accepts and rejects alike (err ~ h^3 for the halved TR pair).
  constexpr double kSafety = 0.9;
  constexpr double kShrinkMin = 0.2;
  constexpr double kGrowMax = 2.0;

  for (std::size_t step = 0; step < opts.max_steps; ++step) {
    if (t >= opts.t_stop) return out;
    h = std::min(h, opts.t_stop - t);
    const auto method = be_remaining > 0 ? FlatStepper::Method::kBackwardEuler
                                         : FlatStepper::Method::kTrapezoidal;

    // One full step vs two half steps from the same (uncopied) state.
    full.step_from(accepted.state(), h, source_value(source, t + h), method);
    halves.step_from(accepted.state(), 0.5 * h, source_value(source, t + 0.5 * h), method);
    halves.step(0.5 * h, source_value(source, t + h), method);

    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      err = std::max(err, std::abs(full.voltages()[i] - halves.voltages()[i]));
    }
    const double factor =
        err > 0.0 ? std::clamp(kSafety * std::cbrt(opts.tol / err), kShrinkMin, kGrowMax)
                  : kGrowMax;

    if (err <= opts.tol || h <= dt_min * (1.0 + 1e-12)) {
      // Accept: adopt the (more accurate) half-step solution in O(1); the
      // accepted state seeds the next attempt directly.
      t += h;
      accepted.swap_state(halves);
      const std::vector<double>& v = accepted.voltages();
      out.time.push_back(t);
      if (all) {
        for (std::size_t i = 0; i < n; ++i) out.node_voltage[i].push_back(v[i]);
      } else {
        for (std::size_t r = 0; r < rows; ++r) {
          out.node_voltage[r].push_back(v[static_cast<std::size_t>(opts.probes[r])]);
        }
      }
      if (be_remaining > 0) --be_remaining;
      h = std::clamp(h * factor, dt_min, dt_max);
    } else {
      // Reject: `accepted` was never touched, so shrinking h is the whole
      // rollback.
      h = std::clamp(h * factor, dt_min, dt_max);
      if (h <= dt_min && err > 100.0 * opts.tol) {
        throw std::runtime_error(
            "simulate_tree_adaptive: cannot meet tolerance above dt_min");
      }
    }
  }
  throw std::runtime_error("simulate_tree_adaptive: max step count exceeded");
}

}  // namespace relmore::sim
