#include "relmore/sim/mna.hpp"

#include <cmath>
#include <stdexcept>

namespace relmore::sim {

using circuit::RlcTree;
using circuit::SectionId;
using linalg::LuFactor;
using linalg::Matrix;

MnaSystem build_mna(const RlcTree& tree) {
  if (tree.empty()) throw std::invalid_argument("build_mna: empty tree");
  const std::size_t n = tree.size();
  MnaSystem sys;
  sys.E = Matrix(2 * n, 2 * n);
  sys.F = Matrix(2 * n, 2 * n);
  sys.g.assign(2 * n, 0.0);

  // Row i (node equation):   C_i v_i' = j_i - sum_{c in children(i)} j_c
  // Row n+i (branch equation): L_i j_i' = v_parent - v_i - R_i j_i
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<SectionId>(i);
    const auto& v = tree.section(id).v;
    sys.E(i, i) = v.capacitance;
    sys.F(i, n + i) = 1.0;
    for (SectionId c : tree.children(id)) {
      sys.F(i, n + static_cast<std::size_t>(c)) = -1.0;
    }
    sys.E(n + i, n + i) = v.inductance;
    sys.F(n + i, i) = -1.0;
    sys.F(n + i, n + i) = -v.resistance;
    const SectionId parent = tree.section(id).parent;
    if (parent == circuit::kInput) {
      sys.g[n + i] = 1.0;
    } else {
      sys.F(n + i, static_cast<std::size_t>(parent)) = 1.0;
    }
  }
  return sys;
}

TransientResult simulate_mna(const RlcTree& tree, const Source& source,
                             const TransientOptions& opts) {
  if (opts.t_stop <= 0.0 || opts.dt <= 0.0) {
    throw std::invalid_argument("simulate_mna: t_stop and dt must be positive");
  }
  const MnaSystem sys = build_mna(tree);
  const std::size_t n = tree.size();
  const std::size_t m = 2 * n;
  const double h = opts.dt;
  const auto steps = static_cast<std::size_t>(std::ceil(opts.t_stop / opts.dt));

  // Trapezoidal:   (E/h - F/2) x_k = (E/h + F/2) x_{k-1} + g (u_k + u_{k-1})/2
  // Backward Euler:(E/h - F)   x_k = (E/h)       x_{k-1} + g u_k
  Matrix lhs_tr = sys.E;
  lhs_tr *= 1.0 / h;
  {
    Matrix half = sys.F;
    half *= 0.5;
    lhs_tr -= half;
  }
  Matrix rhs_tr = sys.E;
  rhs_tr *= 1.0 / h;
  {
    Matrix half = sys.F;
    half *= 0.5;
    rhs_tr += half;
  }
  Matrix lhs_be = sys.E;
  lhs_be *= 1.0 / h;
  lhs_be -= sys.F;
  Matrix rhs_be = sys.E;
  rhs_be *= 1.0 / h;

  const LuFactor lu_tr(lhs_tr);
  const LuFactor lu_be(lhs_be);

  std::vector<double> x(m, 0.0);
  TransientResult out;
  out.time.reserve(steps + 1);
  out.node_voltage.assign(n, {});
  out.time.push_back(0.0);
  for (std::size_t i = 0; i < n; ++i) out.node_voltage[i].push_back(0.0);

  double u_prev = source_value(source, 0.0);
  for (std::size_t step = 1; step <= steps; ++step) {
    const double t = static_cast<double>(step) * h;
    const double u = source_value(source, t);
    const bool trapezoidal = static_cast<int>(step) > opts.be_startup_steps;
    std::vector<double> rhs = trapezoidal ? rhs_tr * x : rhs_be * x;
    const double drive = trapezoidal ? 0.5 * (u + u_prev) : u;
    for (std::size_t i = 0; i < m; ++i) rhs[i] += sys.g[i] * drive;
    x = trapezoidal ? lu_tr.solve(std::move(rhs)) : lu_be.solve(std::move(rhs));
    out.time.push_back(t);
    for (std::size_t i = 0; i < n; ++i) out.node_voltage[i].push_back(x[i]);
    u_prev = u;
  }
  return out;
}

}  // namespace relmore::sim
