#include "relmore/sim/state_space.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace relmore::sim {

using circuit::RlcTree;
using circuit::SectionId;
using linalg::Complex;
using linalg::LuFactor;
using linalg::Matrix;

StateSpace build_state_space(const RlcTree& tree) {
  if (tree.empty()) throw std::invalid_argument("build_state_space: empty tree");
  const std::size_t n = tree.size();
  for (const auto& s : tree.sections()) {
    if (s.v.inductance <= 0.0 || s.v.capacitance <= 0.0) {
      throw std::invalid_argument(
          "build_state_space: every section needs L > 0 and C > 0 "
          "(use simulate_tree/simulate_mna for degenerate sections)");
    }
  }
  StateSpace ss;
  ss.sections = n;
  ss.A = Matrix(2 * n, 2 * n);
  ss.b.assign(2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<SectionId>(i);
    const auto& v = tree.section(id).v;
    const std::size_t ci = ss.current_index(id);
    const std::size_t vi = ss.voltage_index(id);
    // L_i di/dt = v_parent - v_i - R_i i
    ss.A(ci, vi) = -1.0 / v.inductance;
    ss.A(ci, ci) = -v.resistance / v.inductance;
    const SectionId parent = tree.section(id).parent;
    if (parent == circuit::kInput) {
      ss.b[ci] = 1.0 / v.inductance;
    } else {
      ss.A(ci, ss.voltage_index(parent)) = 1.0 / v.inductance;
    }
    // C_i dv/dt = i - sum(children currents)
    ss.A(vi, ci) = 1.0 / v.capacitance;
    for (SectionId c : tree.children(id)) {
      ss.A(vi, ss.current_index(c)) = -1.0 / v.capacitance;
    }
  }
  return ss;
}

ModalSolver::ModalSolver(const RlcTree& tree)
    : ss_(build_state_space(tree)), eig_(linalg::eigen_decompose(ss_.A)), lu_a_(ss_.A) {}

std::vector<ModalSolver::Segment> ModalSolver::segments_for(const Source& source) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<Segment> segs;
  if (const auto* st = std::get_if<StepSource>(&source)) {
    segs.push_back({st->volts, 0.0, 0.0, kInf});
  } else if (const auto* rp = std::get_if<RampSource>(&source)) {
    if (rp->rise_seconds <= 0.0) {
      segs.push_back({rp->volts, 0.0, 0.0, kInf});
    } else {
      segs.push_back({0.0, rp->volts / rp->rise_seconds, 0.0, rp->rise_seconds});
      segs.push_back({rp->volts, 0.0, rp->rise_seconds, kInf});
    }
  } else if (const auto* pw = std::get_if<PwlSource>(&source)) {
    if (pw->points.empty()) throw std::invalid_argument("ModalSolver: PWL without points");
    double t_prev = 0.0;
    double v_prev = source_value(source, 0.0);
    for (const auto& [t, v] : pw->points) {
      if (t < 0.0) {
        v_prev = v;
        continue;
      }
      if (t > t_prev) {
        segs.push_back({v_prev, (v - v_prev) / (t - t_prev), t_prev, t});
      }
      t_prev = t;
      v_prev = v;
    }
    segs.push_back({v_prev, 0.0, t_prev, kInf});
  } else {
    throw std::logic_error("ModalSolver: exponential sources are handled analytically");
  }
  return segs;
}

void ModalSolver::modal_coefficients(const std::vector<double>& mismatch,
                                     std::vector<Complex>& coeff) const {
  const std::size_t m = mismatch.size();
  std::vector<std::vector<Complex>> w(m, std::vector<Complex>(m));
  std::vector<Complex> rhs(m);
  for (std::size_t i = 0; i < m; ++i) {
    rhs[i] = mismatch[i];
    for (std::size_t j = 0; j < m; ++j) w[i][j] = eig_.vectors[j][i];
  }
  coeff = linalg::solve_complex(std::move(w), std::move(rhs));
}

std::vector<double> ModalSolver::response(SectionId node, const Source& source,
                                          std::span<const double> times) const {
  const std::size_t m = 2 * ss_.sections;
  const std::size_t comp = ss_.voltage_index(node);
  std::vector<double> out(times.size(), 0.0);

  auto eval_modal = [&](const std::vector<Complex>& coeff, double s, std::size_t k) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < m; ++j) {
      acc += coeff[j] * std::exp(eig_.values[j] * s) * eig_.vectors[j][k];
    }
    return acc.real();
  };

  if (const auto* ex = std::get_if<ExpSource>(&source)) {
    // u = V (1 - e^{-t/tau}); particular solution x_ss + e^{-t/tau} z with
    // (A + I/tau) z = b V.
    double tau = ex->tau_seconds;
    if (tau <= 0.0) throw std::invalid_argument("ModalSolver: ExpSource tau must be positive");
    std::vector<double> bv(m);
    for (std::size_t i = 0; i < m; ++i) bv[i] = ss_.b[i] * ex->volts;
    std::vector<double> x_ss = lu_a_.solve(bv);
    for (double& v : x_ss) v = -v;

    std::vector<double> z;
    for (int attempt = 0;; ++attempt) {
      Matrix shifted = ss_.A;
      for (std::size_t i = 0; i < m; ++i) shifted(i, i) += 1.0 / tau;
      try {
        z = LuFactor(shifted).solve(bv);
        break;
      } catch (const std::runtime_error&) {
        // -1/tau collides with a pole; nudge tau (documented limitation).
        if (attempt >= 3) throw;
        tau *= 1.0 + 1e-9;
      }
    }
    std::vector<double> mismatch(m);
    for (std::size_t i = 0; i < m; ++i) mismatch[i] = -(x_ss[i] + z[i]);
    std::vector<Complex> coeff;
    modal_coefficients(mismatch, coeff);
    for (std::size_t k = 0; k < times.size(); ++k) {
      const double t = times[k];
      if (t < 0.0) {
        out[k] = 0.0;
        continue;
      }
      out[k] = x_ss[comp] + std::exp(-t / tau) * z[comp] + eval_modal(coeff, t, comp);
    }
    return out;
  }

  // Affine-segment chaining for step/ramp/PWL inputs.
  const std::vector<Segment> segs = segments_for(source);
  std::vector<double> x0(m, 0.0);  // state at the start of the current segment
  std::size_t ti = 0;
  while (ti < times.size() && times[ti] < 0.0) out[ti++] = 0.0;

  for (std::size_t si = 0; si < segs.size(); ++si) {
    const Segment& seg = segs[si];
    // Particular solution p + q s on the segment (s = t - t0):
    //   0 = A q + b*slope   -> q = -A^{-1} (b*slope)
    //   q = A p + b*a       -> p = A^{-1} (q - b*a)
    std::vector<double> rhs(m);
    for (std::size_t i = 0; i < m; ++i) rhs[i] = ss_.b[i] * seg.b;
    std::vector<double> q = lu_a_.solve(rhs);
    for (double& v : q) v = -v;
    for (std::size_t i = 0; i < m; ++i) rhs[i] = q[i] - ss_.b[i] * seg.a;
    std::vector<double> p = lu_a_.solve(rhs);

    std::vector<double> mismatch(m);
    for (std::size_t i = 0; i < m; ++i) mismatch[i] = x0[i] - p[i];
    std::vector<Complex> coeff;
    modal_coefficients(mismatch, coeff);

    while (ti < times.size() && (times[ti] < seg.t1 || si + 1 == segs.size())) {
      const double s = times[ti] - seg.t0;
      out[ti] = p[comp] + q[comp] * s + eval_modal(coeff, s, comp);
      ++ti;
    }
    if (ti >= times.size()) break;
    // Advance the full state to the segment boundary.
    const double s_end = seg.t1 - seg.t0;
    for (std::size_t i = 0; i < m; ++i) {
      x0[i] = p[i] + q[i] * s_end + eval_modal(coeff, s_end, i);
    }
  }
  return out;
}

Waveform ModalSolver::response_waveform(SectionId node, const Source& source,
                                        const std::vector<double>& times) const {
  return Waveform(times, response(node, source, times));
}

Complex ModalSolver::transfer(SectionId node, double omega) const {
  if (omega < 0.0) throw std::invalid_argument("ModalSolver::transfer: negative frequency");
  return transfer_laplace(node, Complex{0.0, omega});
}

Complex ModalSolver::transfer_laplace(SectionId node, Complex s) const {
  const std::size_t m = 2 * ss_.sections;
  std::vector<std::vector<Complex>> lhs(m, std::vector<Complex>(m));
  std::vector<Complex> rhs(m);
  for (std::size_t i = 0; i < m; ++i) {
    rhs[i] = ss_.b[i];
    for (std::size_t j = 0; j < m; ++j) lhs[i][j] = -ss_.A(i, j);
    lhs[i][i] += s;
  }
  const std::vector<Complex> x = linalg::solve_complex(std::move(lhs), std::move(rhs));
  return x[ss_.voltage_index(node)];
}

}  // namespace relmore::sim
