#include "relmore/sim/source.hpp"

#include <algorithm>
#include <cmath>

namespace relmore::sim {

namespace {

struct ValueVisitor {
  double t;
  double operator()(const StepSource& s) const { return t >= 0.0 ? s.volts : 0.0; }
  double operator()(const RampSource& s) const {
    if (t <= 0.0) return 0.0;
    if (t >= s.rise_seconds) return s.volts;
    return s.volts * t / s.rise_seconds;
  }
  double operator()(const ExpSource& s) const {
    if (t <= 0.0) return 0.0;
    return s.volts * -std::expm1(-t / s.tau_seconds);
  }
  double operator()(const PwlSource& s) const {
    if (s.points.empty()) throw std::invalid_argument("PwlSource: no points");
    if (t <= s.points.front().first) return s.points.front().second;
    if (t >= s.points.back().first) return s.points.back().second;
    for (std::size_t i = 1; i < s.points.size(); ++i) {
      if (t <= s.points[i].first) {
        const auto& [t0, v0] = s.points[i - 1];
        const auto& [t1, v1] = s.points[i];
        if (t1 == t0) return v1;
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
      }
    }
    return s.points.back().second;
  }
};

struct FinalVisitor {
  double operator()(const StepSource& s) const { return s.volts; }
  double operator()(const RampSource& s) const { return s.volts; }
  double operator()(const ExpSource& s) const { return s.volts; }
  double operator()(const PwlSource& s) const {
    if (s.points.empty()) throw std::invalid_argument("PwlSource: no points");
    return s.points.back().second;
  }
};

}  // namespace

double source_value(const Source& src, double t) { return std::visit(ValueVisitor{t}, src); }

double source_final_value(const Source& src) { return std::visit(FinalVisitor{}, src); }

}  // namespace relmore::sim
