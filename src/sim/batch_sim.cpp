#include "relmore/sim/batch_sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "relmore/engine/batch.hpp"
#include "relmore/engine/batched.hpp"
#include "relmore/engine/tuner.hpp"
#include "relmore/util/arena.hpp"

namespace relmore::sim {

using circuit::FlatTree;
using circuit::SectionId;

/// SIMD-only OpenMP pragma on the fixed-width lane loops, exactly as in
/// engine/batched.cpp: it asserts lane independence (true — lanes are
/// distinct runs) so GCC keeps clean vector codegen; each lane still runs
/// its operations in the scalar association order.
#if defined(RELMORE_HAVE_OPENMP_SIMD)
#define RELMORE_SIMD _Pragma("omp simd")
#else
#define RELMORE_SIMD
#endif

/// Function multi-versioning for the hot kernels: GCC emits a portable
/// baseline clone plus an x86-64-v3 (AVX2) clone behind an ifunc resolver,
/// so one binary vectorizes at full lane width on capable CPUs without any
/// -march build flag. Bitwise-safe: every clone runs the same IEEE
/// operations, just at different vector widths, and the repo-wide
/// -ffp-contract=off applies to all clones, so no FMA contraction can
/// make them diverge.
/// Disabled under ThreadSanitizer: the ifunc resolvers run during early
/// relocation, before the TSan runtime is initialized, and the
/// interceptor-instrumented resolver segfaults at load time. The TSan leg
/// only checks synchronization, so losing the AVX2 clone there costs
/// nothing (the bitwise contract makes all clones equal anyway).
#if defined(__SANITIZE_THREAD__)
#define RELMORE_KERNEL_CLONES
#elif defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define RELMORE_KERNEL_CLONES __attribute__((target_clones("default", "arch=x86-64-v3")))
#else
#define RELMORE_KERNEL_CLONES
#endif

namespace {

/// Group/step-boundary run-control poll. A tripped deadline/cancel aborts
/// the whole batched call (TransientOptions::run_control documents why
/// the simulator keeps no partial results): the throw unwinds to the pool
/// join and surfaces as util::FaultError from simulate/first_crossings.
void throw_if_stopped(const util::RunControl& rc, const char* who) {
  if (!rc.armed()) return;
  const util::ErrorCode code = rc.stop_code();
  if (code == util::ErrorCode::kOk) return;
  throw util::FaultError(util::Status(code, std::string(who) + ": run stopped"));
}

/// Pointers into one lane-group's integration state and per-step scratch;
/// each array holds n·W doubles laid out [section][lane].
struct GroupState {
  double* i_l;
  double* v_l;
  double* i_c;
  double* v_node;
  double* e_b;
  double* j;
  double* j_eq;
};

/// One lane-group's companion factorization for a fixed (h, method) — the
/// batched mirror of FlatStepper::Factors.
struct GroupFactors {
  double* rl;
  double* gc;
  double* r_b;
  double* g_node;
  double* g_eq;
};

/// Number of n·W blocks a group workspace holds: 7 state/scratch arrays
/// plus two 5-array factorizations (backward-Euler and trapezoidal).
constexpr std::size_t kWorkspaceBlocks = 17;

/// How many sections ahead the sweeps prefetch the parent-indexed row —
/// the one access the hardware prefetcher cannot predict. Matches
/// engine/batched.cpp.
constexpr std::size_t kPrefetchAhead = 16;

/// Sink called after the downward sweep finalizes sections [lo, hi) of a
/// step: rows completed by the tile are drained (probe voltages copied
/// out) while still cache-hot. A plain function pointer — not a template
/// parameter — so the kernels keep plain-type signatures and
/// RELMORE_KERNEL_CLONES stays applicable.
using TileSinkFn = void (*)(void* ctx, std::size_t lo, std::size_t hi);

/// Drain state for the recording path: probe sections ascending, with
/// their output rows, plus the per-(group, step) output coordinates.
/// One instance per lane-group task; `cursor`/`step` are reset per step.
struct ProbeDrainCtx {
  double* out_v = nullptr;
  const double* v_node = nullptr;
  const std::size_t* secs = nullptr;  ///< probe sections, ascending
  const int* rows = nullptr;          ///< output row of each probe
  std::size_t count = 0;
  std::size_t cursor = 0;
  std::size_t samples = 0;
  std::size_t padded = 0;
  std::size_t group = 0;
  std::size_t w = 0;
  std::size_t step = 0;
};

/// Copies every probe with section in [cursor's section, hi) — exactly
/// the rows the tile just finalized, because sections are ascending and
/// tiles arrive in order.
void drain_probes(void* vctx, std::size_t lo, std::size_t hi) {
  auto* d = static_cast<ProbeDrainCtx*>(vctx);
  (void)lo;
  const std::size_t w = d->w;
  while (d->cursor < d->count && d->secs[d->cursor] < hi) {
    const std::size_t dst =
        (static_cast<std::size_t>(d->rows[d->cursor]) * d->samples + d->step) * d->padded +
        d->group * w;
    std::memcpy(d->out_v + dst, d->v_node + d->secs[d->cursor] * w, w * sizeof(double));
    ++d->cursor;
  }
}

/// Builds the state-independent factors for every lane of one group, in
/// FlatStepper's exact expression and accumulation order per lane. The
/// g_eq select is division-safe as written: a zero g_node makes the
/// denominator exactly 1, and the scalar path's explicit 0.0 is what
/// 0/1 produces anyway.
template <std::size_t W>
RELMORE_KERNEL_CLONES void build_factors(std::size_t n, const SectionId* parent, const double* r,
                                         const double* l, const double* c, double h,
                                         bool trapezoidal, const GroupFactors& f) {
  // Hoist the array pointers into restrict-qualified locals: the blocks
  // are disjoint workspace slices, and leaving them behind the struct
  // indirection blocks if-conversion and vectorization of every loop.
  double* __restrict frl = f.rl;
  double* __restrict fgc = f.gc;
  double* __restrict frb = f.r_b;
  double* __restrict fg = f.g_node;
  double* __restrict fge = f.g_eq;
  if (trapezoidal) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t at = i * W;
      RELMORE_SIMD
      for (std::size_t t = 0; t < W; ++t) {
        const double rl = 2.0 * l[at + t] / h;
        const double gc = 2.0 * c[at + t] / h;
        frl[at + t] = rl;
        fgc[at + t] = gc;
        frb[at + t] = r[at + t] + rl;
        fg[at + t] = gc;
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t at = i * W;
      RELMORE_SIMD
      for (std::size_t t = 0; t < W; ++t) {
        const double rl = l[at + t] / h;
        const double gc = c[at + t] / h;
        frl[at + t] = rl;
        fgc[at + t] = gc;
        frb[at + t] = r[at + t] + rl;
        fg[at + t] = gc;
      }
    }
  }
  for (std::size_t ii = n; ii-- > 0;) {
    const std::size_t at = ii * W;
    RELMORE_SIMD
    for (std::size_t t = 0; t < W; ++t) {
      const double g = fg[at + t];
      // Unconditional division so the loop body is branch-free (a zero g
      // makes the denominator exactly 1 and 0/1 == +0.0, the scalar
      // path's explicit zero).
      const double denom = 1.0 + frb[at + t] * g;
      const double ge = g / denom;
      fge[at + t] = g > 0.0 ? ge : 0.0;
    }
    const SectionId p = parent[ii];
    if (p != circuit::kInput) {
      // Cross-row accumulation: rows never alias (parent id != own id).
      double* __restrict up = fg + static_cast<std::size_t>(p) * W;
      const double* __restrict mine = fge + at;
      RELMORE_SIMD
      for (std::size_t t = 0; t < W; ++t) up[t] += mine[t];
    }
  }
}

/// Advances every lane of one group by h. Lane t performs exactly the
/// scalar FlatStepper::advance operations of run group·W + t, in the same
/// order; the j/g_node division goes through a selected safe divisor,
/// which leaves live lanes' bits untouched and keeps dead lanes finite.
///
/// The downward sweep runs in contiguous tiles of `tile_rows` sections
/// (0 = whole tree); after each tile the optional sink drains the
/// just-finalized voltage rows while cache-hot. Tiling changes only the
/// touch order (the sweep still visits sections in ascending id order),
/// so results are bitwise-equal for every tile size.
template <std::size_t W, bool TRAP>
RELMORE_KERNEL_CLONES void step_group_impl(std::size_t n, const SectionId* parent,
                                           const double* lvals, const double* cvals,
                                           const GroupFactors& f, const GroupState& s,
                                           const double* vin, std::size_t tile_rows,
                                           TileSinkFn sink, void* ctx) {
  // Restrict-qualified local views of the disjoint workspace slices (see
  // build_factors): without them the struct indirection defeats
  // if-conversion and every inner loop stays scalar.
  const double* __restrict frl = f.rl;
  const double* __restrict fgc = f.gc;
  const double* __restrict frb = f.r_b;
  const double* __restrict fg = f.g_node;
  const double* __restrict fge = f.g_eq;
  double* __restrict i_l = s.i_l;
  double* __restrict v_l = s.v_l;
  double* __restrict i_c = s.i_c;
  double* __restrict v_node = s.v_node;
  double* __restrict e_b = s.e_b;
  double* __restrict j = s.j;
  double* __restrict j_eq = s.j_eq;

  // relmore-lint: begin-hot-loop(batch-sim-step)
  // Upward sweep with the state-dependent companion sources fused in
  // behind a lazy frontier: rows [front, n) of e_b/j are initialized.
  // Before accumulating into parent p the loop forces front <= p, so a
  // row's companion values are always a pure overwrite of previous-step
  // state (i_l/v_l/v_node/i_c, none of which the upward sweep modifies)
  // before any child folds into its j — exactly the per-location
  // operation order of a separate init loop followed by the reverse
  // accumulation, hence bitwise-equal. The fusion saves a full e_b/j
  // round trip through memory per step, which is what stalls the sweep
  // once the working set outgrows L1/L2. The division runs
  // unconditionally through the selected safe divisor (live lanes divide
  // by their real g_node, so their bits are untouched; dead lanes divide
  // by 1), keeping the body branch-free and vectorizable. The root's
  // parent accumulation lands in a stack sink so the per-node body is a
  // single branch-free loop; the prefetch covers the parent-row gather,
  // the one access the hardware prefetcher cannot predict.
  double root_sink[W] = {};
  std::size_t front = n;
  for (std::size_t ii = n; ii-- > 0;) {
    if (ii >= kPrefetchAhead) {
      const SectionId fp = parent[ii - kPrefetchAhead];
      if (fp != circuit::kInput) {
        __builtin_prefetch(j + static_cast<std::size_t>(fp) * W, 1, 3);
      }
    }
    const SectionId p = parent[ii];
    const std::size_t need = p == circuit::kInput ? ii : static_cast<std::size_t>(p);
    while (front > need) {
      --front;
      const std::size_t fat = front * W;
      RELMORE_SIMD
      for (std::size_t t = 0; t < W; ++t) {
        if constexpr (TRAP) {
          e_b[fat + t] = -(frl[fat + t] * i_l[fat + t] + v_l[fat + t]);
          j[fat + t] = fgc[fat + t] * v_node[fat + t] + i_c[fat + t];
        } else {
          e_b[fat + t] = -(frl[fat + t] * i_l[fat + t]);
          j[fat + t] = fgc[fat + t] * v_node[fat + t];
        }
      }
    }
    const std::size_t at = ii * W;
    double* __restrict up =
        p == circuit::kInput ? root_sink : j + static_cast<std::size_t>(p) * W;
    RELMORE_SIMD
    for (std::size_t t = 0; t < W; ++t) {
      const double g = fg[at + t];
      const double safe = g > 0.0 ? g : 1.0;
      const double q = j[at + t] / safe;
      const double je = g > 0.0 ? fge[at + t] * (e_b[at + t] + q) : j[at + t];
      j_eq[at + t] = je;
      up[t] += je;
    }
  }

  // Downward sweep fused with the companion history update: everything the
  // history needs (the old and new voltages, e_b, the branch current) is
  // in registers right after the node's voltage is computed, so neither a
  // v_prev checkpoint array nor an i_b array ever touches memory.
  // Parents are finalized before children read them; the parent-row read
  // is staged through a W-wide local so the compiler need not prove the
  // rows disjoint.
  const std::size_t tile = tile_rows == 0 ? n : tile_rows;
  for (std::size_t lo = 0; lo < n; lo += tile) {
    const std::size_t hi = lo + tile < n ? lo + tile : n;
    for (std::size_t ii = lo; ii < hi; ++ii) {
      if (ii + kPrefetchAhead < n) {
        const SectionId fp = parent[ii + kPrefetchAhead];
        if (fp != circuit::kInput) {
          __builtin_prefetch(v_node + static_cast<std::size_t>(fp) * W, 0, 3);
        }
      }
      const std::size_t at = ii * W;
      const SectionId p = parent[ii];
      const double* __restrict src =
          p == circuit::kInput ? vin : v_node + static_cast<std::size_t>(p) * W;
      RELMORE_SIMD
      for (std::size_t t = 0; t < W; ++t) {
        const double vp = src[t];
        const double g = fg[at + t];
        const double cur = g > 0.0 ? fge[at + t] * vp - j_eq[at + t] : -j[at + t];
        const double v_old = v_node[at + t];
        const double v_new = vp - frb[at + t] * cur - e_b[at + t];
        v_node[at + t] = v_new;
        double i_c_new;
        if constexpr (TRAP) {
          i_c_new = fgc[at + t] * v_new - (fgc[at + t] * v_old + i_c[at + t]);
        } else {
          i_c_new = fgc[at + t] * (v_new - v_old);
        }
        v_l[at + t] = lvals[at + t] > 0.0 ? frl[at + t] * cur + e_b[at + t] : 0.0;
        i_l[at + t] = cur;
        i_c[at + t] = cvals[at + t] > 0.0 ? i_c_new : 0.0;
      }
    }
    if (sink != nullptr) sink(ctx, lo, hi);
  }
  // relmore-lint: end-hot-loop
}

template <std::size_t W>
void step_group(std::size_t n, const SectionId* parent, const double* lvals, const double* cvals,
                const GroupFactors& f, const GroupState& s, const double* vin, bool trapezoidal,
                std::size_t tile_rows, TileSinkFn sink, void* ctx) {
  if (trapezoidal) {
    step_group_impl<W, true>(n, parent, lvals, cvals, f, s, vin, tile_rows, sink, ctx);
  } else {
    step_group_impl<W, false>(n, parent, lvals, cvals, f, s, vin, tile_rows, sink, ctx);
  }
}

/// Carves a workspace into the state/factor views and zeroes the state.
template <std::size_t W>
void init_workspace(std::size_t n, double* ws, GroupState& s, GroupFactors& fbe,
                    GroupFactors& ftr) {
  const std::size_t b = n * W;
  double* p = ws;
  s = GroupState{p, p + b, p + 2 * b, p + 3 * b, p + 4 * b, p + 5 * b, p + 6 * b};
  fbe = GroupFactors{p + 7 * b, p + 8 * b, p + 9 * b, p + 10 * b, p + 11 * b};
  ftr = GroupFactors{p + 12 * b, p + 13 * b, p + 14 * b, p + 15 * b, p + 16 * b};
  std::memset(ws, 0, 4 * b * sizeof(double));  // i_l, v_l, i_c, v_node start at zero
}

/// One lane-group of the recording path. `drain_secs`/`drain_rows` list
/// the probes ascending by section (with their output rows) so each
/// step's probe copies ride the downward sweep's tile sink while the
/// voltages are cache-hot.
template <std::size_t W>
void simulate_group(std::size_t n, const SectionId* parent, const double* r, const double* l,
                    const double* c, const Source* sources, const TransientOptions& opts,
                    std::size_t steps, const std::size_t* drain_secs, const int* drain_rows,
                    std::size_t drain_count, std::size_t tile_rows, double* out_v,
                    std::size_t samples, std::size_t padded, std::size_t group, double* ws) {
  GroupState s;
  GroupFactors fbe;
  GroupFactors ftr;
  init_workspace<W>(n, ws, s, fbe, ftr);
  const double h = opts.dt;
  bool be_built = false;
  bool tr_built = false;
  double vin[W];
  ProbeDrainCtx drain;
  drain.out_v = out_v;
  drain.v_node = s.v_node;
  drain.secs = drain_secs;
  drain.rows = drain_rows;
  drain.count = drain_count;
  drain.samples = samples;
  drain.padded = padded;
  drain.group = group;
  drain.w = W;
  for (std::size_t step = 1; step <= steps; ++step) {
    if ((step & 255u) == 0u) throw_if_stopped(opts.run_control, "BatchSimulator::simulate");
    const double t = static_cast<double>(step) * h;
    const bool trap = static_cast<int>(step) > opts.be_startup_steps;
    const GroupFactors& f = trap ? ftr : fbe;
    if (trap && !tr_built) {
      build_factors<W>(n, parent, r, l, c, h, true, ftr);
      tr_built = true;
    } else if (!trap && !be_built) {
      build_factors<W>(n, parent, r, l, c, h, false, fbe);
      be_built = true;
    }
    for (std::size_t t_lane = 0; t_lane < W; ++t_lane) {
      vin[t_lane] = source_value(sources[t_lane], t);
    }
    drain.cursor = 0;
    drain.step = step;
    step_group<W>(n, parent, l, c, f, s, vin, trap, tile_rows, &drain_probes, &drain);
  }
}

/// One lane-group of the streaming first-crossing path. `live` is the
/// number of non-padding lanes; `out` receives `live` crossing times.
template <std::size_t W>
void crossings_group(std::size_t n, const SectionId* parent, const double* r, const double* l,
                     const double* c, const Source* sources, const TransientOptions& opts,
                     std::size_t steps, std::size_t probe_section, double threshold,
                     std::size_t live, std::size_t tile_rows, double* out, double* ws) {
  GroupState s;
  GroupFactors fbe;
  GroupFactors ftr;
  init_workspace<W>(n, ws, s, fbe, ftr);
  const double h = opts.dt;
  bool be_built = false;
  bool tr_built = false;
  double vin[W];
  double prev_v[W] = {};
  double cross[W];
  bool crossed[W] = {};
  for (std::size_t t_lane = 0; t_lane < W; ++t_lane) cross[t_lane] = -1.0;
  std::size_t remaining = live;
  double t_prev = 0.0;
  for (std::size_t step = 1; step <= steps; ++step) {
    if ((step & 255u) == 0u) {
      throw_if_stopped(opts.run_control, "BatchSimulator::first_crossings");
    }
    const double t = static_cast<double>(step) * h;
    const bool trap = static_cast<int>(step) > opts.be_startup_steps;
    const GroupFactors& f = trap ? ftr : fbe;
    if (trap && !tr_built) {
      build_factors<W>(n, parent, r, l, c, h, true, ftr);
      tr_built = true;
    } else if (!trap && !be_built) {
      build_factors<W>(n, parent, r, l, c, h, false, fbe);
      be_built = true;
    }
    for (std::size_t t_lane = 0; t_lane < W; ++t_lane) {
      vin[t_lane] = source_value(sources[t_lane], t);
    }
    step_group<W>(n, parent, l, c, f, s, vin, trap, tile_rows, nullptr, nullptr);
    const double* volt = s.v_node + probe_section * W;
    for (std::size_t t_lane = 0; t_lane < live; ++t_lane) {
      const double v = volt[t_lane];
      if (!crossed[t_lane] && prev_v[t_lane] < threshold && v >= threshold) {
        // Waveform::first_rise_crossing's interpolation, verbatim.
        const double w = (threshold - prev_v[t_lane]) / (v - prev_v[t_lane]);
        cross[t_lane] = t_prev + w * (t - t_prev);
        crossed[t_lane] = true;
        --remaining;
      }
      prev_v[t_lane] = v;
    }
    // Same early-exit rule as the scalar streaming path: with
    // threshold <= 0 the front-sample fallback governs uncrossed lanes
    // and needs the full run.
    if (remaining == 0 && threshold > 0.0) break;
    t_prev = t;
  }
  if (0.0 >= threshold) {
    for (std::size_t t_lane = 0; t_lane < live; ++t_lane) {
      if (!crossed[t_lane]) cross[t_lane] = 0.0;
    }
  }
  for (std::size_t t_lane = 0; t_lane < live; ++t_lane) out[t_lane] = cross[t_lane];
}

void validate_options(const TransientOptions& opts, const char* who) {
  if (opts.t_stop <= 0.0 || opts.dt <= 0.0) {
    throw std::invalid_argument(std::string(who) + ": t_stop and dt must be positive");
  }
}

}  // namespace

// --- BatchTransientResult ---------------------------------------------------

std::size_t BatchTransientResult::row(SectionId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= row_of_.size() ||
      row_of_[static_cast<std::size_t>(node)] < 0) {
    throw std::out_of_range("BatchTransientResult: section was not recorded");
  }
  return static_cast<std::size_t>(row_of_[static_cast<std::size_t>(node)]);
}

double BatchTransientResult::voltage(std::size_t run, SectionId node, std::size_t step) const {
  if (run >= runs_) throw std::out_of_range("BatchTransientResult: run out of range");
  if (step >= time_.size()) throw std::out_of_range("BatchTransientResult: step out of range");
  return v_[(row(node) * time_.size() + step) * padded_runs_ + run];
}

Waveform BatchTransientResult::waveform(std::size_t run, SectionId node) const {
  if (run >= runs_) throw std::out_of_range("BatchTransientResult: run out of range");
  const std::size_t r = row(node);
  std::vector<double> values(time_.size());
  for (std::size_t step = 0; step < time_.size(); ++step) {
    values[step] = v_[(r * time_.size() + step) * padded_runs_ + run];
  }
  return Waveform(time_, std::move(values));
}

// --- BatchSimulator ---------------------------------------------------------

BatchSimulator::BatchSimulator(FlatTree topology, std::size_t lane_width)
    : topo_(std::move(topology)) {
  if (topo_.empty()) throw std::invalid_argument("BatchSimulator: empty topology");
  if (lane_width == 0) {
    lane_width = engine::KernelTuner::instance().sim_plan(topo_.size(), 0).lane_width;
  }
  if (lane_width != 1 && lane_width != 2 && lane_width != 4 && lane_width != 8) {
    throw std::invalid_argument("BatchSimulator: lane width must be 1, 2, 4, or 8");
  }
  lane_width_ = lane_width;
}

void BatchSimulator::set_tile_rows(std::size_t tile_rows) { tile_rows_ = tile_rows; }

std::size_t BatchSimulator::resolved_tile_rows() const {
  return tile_rows_ != 0
             ? tile_rows_
             : engine::KernelTuner::instance().sim_plan(topo_.size(), runs_).tile_rows;
}

std::size_t BatchSimulator::value_slot(std::size_t s, std::size_t section) const {
  const std::size_t group = s / lane_width_;
  const std::size_t lane = s % lane_width_;
  return (group * topo_.size() + section) * lane_width_ + lane;
}

void BatchSimulator::resize(std::size_t runs) {
  runs_ = runs;
  groups_ = (runs + lane_width_ - 1) / lane_width_;
  const std::size_t n = topo_.size();
  const std::size_t total = groups_ * n * lane_width_;
  r_.resize(total);
  l_.resize(total);
  c_.resize(total);
  // Nominal values everywhere, padding lanes included — padding integrates
  // a harmless real circuit and is never read back.
  for (std::size_t g = 0; g < groups_; ++g) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t at = (g * n + i) * lane_width_;
      for (std::size_t t = 0; t < lane_width_; ++t) {
        r_[at + t] = topo_.resistance()[i];
        l_[at + t] = topo_.inductance()[i];
        c_[at + t] = topo_.capacitance()[i];
      }
    }
  }
  sources_.assign(groups_ * lane_width_, Source{StepSource{1.0}});
}

void BatchSimulator::set_source(std::size_t s, Source source) {
  if (s >= runs_) throw std::out_of_range("BatchSimulator::set_source: run out of range");
  sources_[s] = std::move(source);
}

void BatchSimulator::set_run(std::size_t s, const double* resistance, const double* inductance,
                             const double* capacitance) {
  if (s >= runs_) throw std::out_of_range("BatchSimulator::set_run: run out of range");
  const std::size_t n = topo_.size();
  const std::size_t w = lane_width_;
  const std::size_t base = value_slot(s, 0);
  for (std::size_t i = 0; i < n; ++i) r_[base + i * w] = resistance[i];
  for (std::size_t i = 0; i < n; ++i) l_[base + i * w] = inductance[i];
  for (std::size_t i = 0; i < n; ++i) c_[base + i * w] = capacitance[i];
}

void BatchSimulator::set_run_section(std::size_t s, SectionId id,
                                     const circuit::SectionValues& v) {
  if (s >= runs_) {
    throw std::out_of_range("BatchSimulator::set_run_section: run out of range");
  }
  if (id < 0 || static_cast<std::size_t>(id) >= topo_.size()) {
    throw std::out_of_range("BatchSimulator::set_run_section: section out of range");
  }
  const std::size_t at = value_slot(s, static_cast<std::size_t>(id));
  r_[at] = v.resistance;
  l_[at] = v.inductance;
  c_[at] = v.capacitance;
}

BatchTransientResult BatchSimulator::simulate(const TransientOptions& opts,
                                              engine::BatchAnalyzer* pool) const {
  if (runs_ == 0) throw std::invalid_argument("BatchSimulator: no runs (call resize)");
  validate_options(opts, "BatchSimulator::simulate");
  const std::size_t n = topo_.size();
  const std::size_t w = lane_width_;
  for (const SectionId id : opts.probes) {
    if (id < 0 || static_cast<std::size_t>(id) >= n) {
      throw std::out_of_range("BatchSimulator::simulate: probe id out of range");
    }
  }
  const auto steps = static_cast<std::size_t>(std::ceil(opts.t_stop / opts.dt));
  const std::size_t samples = steps + 1;

  BatchTransientResult out;
  out.runs_ = runs_;
  out.padded_runs_ = groups_ * w;
  out.time_.resize(samples);
  out.time_[0] = 0.0;
  for (std::size_t step = 1; step <= steps; ++step) {
    out.time_[step] = static_cast<double>(step) * opts.dt;
  }
  out.row_of_.assign(n, -1);
  if (opts.probes.empty()) {
    out.ids_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.ids_[i] = static_cast<SectionId>(i);
      out.row_of_[i] = static_cast<int>(i);
    }
  } else {
    out.ids_ = opts.probes;
    for (std::size_t row = 0; row < opts.probes.size(); ++row) {
      out.row_of_[static_cast<std::size_t>(opts.probes[row])] = static_cast<int>(row);
    }
  }
  // Probes sorted ascending by section (with their output rows) so each
  // step's copies drain through the downward sweep's tile sink with one
  // monotone cursor.
  const std::size_t probe_count = out.ids_.size();
  std::vector<std::size_t> drain_secs(probe_count);
  std::vector<int> drain_rows(probe_count);
  for (std::size_t row = 0; row < probe_count; ++row) drain_rows[row] = static_cast<int>(row);
  std::sort(drain_rows.begin(), drain_rows.end(), [&](int a, int b) {
    return out.ids_[static_cast<std::size_t>(a)] < out.ids_[static_cast<std::size_t>(b)];
  });
  for (std::size_t i = 0; i < probe_count; ++i) {
    drain_secs[i] = static_cast<std::size_t>(out.ids_[static_cast<std::size_t>(drain_rows[i])]);
  }
  // Zero-filled storage doubles as the t=0 sample (everything starts at
  // 0 V) and as the padding lanes' rows.
  out.v_.assign(out.ids_.size() * samples * out.padded_runs_, 0.0);

  const std::size_t tile_rows = resolved_tile_rows();
  const SectionId* parent = topo_.parent().data();
  const auto run_one = [&](std::size_t g, double* ws) {
    const std::size_t base = g * n * w;
    const double* r = r_.data() + base;
    const double* l = l_.data() + base;
    const double* c = c_.data() + base;
    const Source* srcs = sources_.data() + g * w;
    switch (w) {
      case 1:
        simulate_group<1>(n, parent, r, l, c, srcs, opts, steps, drain_secs.data(),
                          drain_rows.data(), probe_count, tile_rows, out.v_.data(), samples,
                          out.padded_runs_, g, ws);
        return;
      case 2:
        simulate_group<2>(n, parent, r, l, c, srcs, opts, steps, drain_secs.data(),
                          drain_rows.data(), probe_count, tile_rows, out.v_.data(), samples,
                          out.padded_runs_, g, ws);
        return;
      case 4:
        simulate_group<4>(n, parent, r, l, c, srcs, opts, steps, drain_secs.data(),
                          drain_rows.data(), probe_count, tile_rows, out.v_.data(), samples,
                          out.padded_runs_, g, ws);
        return;
      case 8:
        simulate_group<8>(n, parent, r, l, c, srcs, opts, steps, drain_secs.data(),
                          drain_rows.data(), probe_count, tile_rows, out.v_.data(), samples,
                          out.padded_runs_, g, ws);
        return;
      default: throw std::logic_error("BatchSimulator: unsupported lane width");
    }
  };

  // One lane-group per task, outputs to disjoint run ranges — results are
  // independent of scheduling. Workspace comes from the worker's bump
  // arena: one grab per chunk, reused across its groups and retained
  // across calls, so corpus-scale sweeps don't churn the allocator.
  const std::size_t ws_size = kWorkspaceBlocks * n * w;
  if (pool != nullptr && groups_ > 1) {
    pool->parallel_chunks(groups_, [&](std::size_t begin, std::size_t end) {
      util::Arena& arena = util::thread_arena();
      const util::ArenaScope scope(arena);
      double* ws = arena.grab<double>(ws_size);
      for (std::size_t g = begin; g < end; ++g) {
        throw_if_stopped(opts.run_control, "BatchSimulator::simulate");
        run_one(g, ws);
      }
    });
  } else {
    util::Arena& arena = util::thread_arena();
    const util::ArenaScope scope(arena);
    double* ws = arena.grab<double>(ws_size);
    for (std::size_t g = 0; g < groups_; ++g) {
      throw_if_stopped(opts.run_control, "BatchSimulator::simulate");
      run_one(g, ws);
    }
  }
  return out;
}

std::vector<double> BatchSimulator::first_crossings(const TransientOptions& opts,
                                                    SectionId probe, double threshold,
                                                    engine::BatchAnalyzer* pool) const {
  if (runs_ == 0) throw std::invalid_argument("BatchSimulator: no runs (call resize)");
  validate_options(opts, "BatchSimulator::first_crossings");
  const std::size_t n = topo_.size();
  if (probe < 0 || static_cast<std::size_t>(probe) >= n) {
    throw std::out_of_range("BatchSimulator::first_crossings: probe id out of range");
  }
  const std::size_t w = lane_width_;
  const auto steps = static_cast<std::size_t>(std::ceil(opts.t_stop / opts.dt));
  const auto probe_section = static_cast<std::size_t>(probe);

  std::vector<double> out(runs_, -1.0);
  const std::size_t tile_rows = resolved_tile_rows();
  const SectionId* parent = topo_.parent().data();
  const auto run_one = [&](std::size_t g, double* ws) {
    const std::size_t base = g * n * w;
    const double* r = r_.data() + base;
    const double* l = l_.data() + base;
    const double* c = c_.data() + base;
    const Source* srcs = sources_.data() + g * w;
    const std::size_t live = std::min(w, runs_ - g * w);
    double* dst = out.data() + g * w;
    switch (w) {
      case 1:
        crossings_group<1>(n, parent, r, l, c, srcs, opts, steps, probe_section, threshold,
                           live, tile_rows, dst, ws);
        return;
      case 2:
        crossings_group<2>(n, parent, r, l, c, srcs, opts, steps, probe_section, threshold,
                           live, tile_rows, dst, ws);
        return;
      case 4:
        crossings_group<4>(n, parent, r, l, c, srcs, opts, steps, probe_section, threshold,
                           live, tile_rows, dst, ws);
        return;
      case 8:
        crossings_group<8>(n, parent, r, l, c, srcs, opts, steps, probe_section, threshold,
                           live, tile_rows, dst, ws);
        return;
      default: throw std::logic_error("BatchSimulator: unsupported lane width");
    }
  };

  const std::size_t ws_size = kWorkspaceBlocks * n * w;
  if (pool != nullptr && groups_ > 1) {
    pool->parallel_chunks(groups_, [&](std::size_t begin, std::size_t end) {
      util::Arena& arena = util::thread_arena();
      const util::ArenaScope scope(arena);
      double* ws = arena.grab<double>(ws_size);
      for (std::size_t g = begin; g < end; ++g) {
        throw_if_stopped(opts.run_control, "BatchSimulator::first_crossings");
        run_one(g, ws);
      }
    });
  } else {
    util::Arena& arena = util::thread_arena();
    const util::ArenaScope scope(arena);
    double* ws = arena.grab<double>(ws_size);
    for (std::size_t g = 0; g < groups_; ++g) {
      throw_if_stopped(opts.run_control, "BatchSimulator::first_crossings");
      run_one(g, ws);
    }
  }
  return out;
}

}  // namespace relmore::sim
