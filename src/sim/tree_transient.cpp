#include "relmore/sim/tree_transient.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "relmore/circuit/flat_tree.hpp"
#include "relmore/sim/flat_stepper.hpp"
#include "relmore/sim/tree_stepper.hpp"

namespace relmore::sim {

using circuit::RlcTree;
using circuit::SectionId;

Waveform TransientResult::waveform(SectionId node) const {
  if (probe_ids.empty()) {
    return Waveform(time, node_voltage.at(static_cast<std::size_t>(node)));
  }
  for (std::size_t row = 0; row < probe_ids.size(); ++row) {
    if (probe_ids[row] == node) return Waveform(time, node_voltage[row]);
  }
  throw std::out_of_range("TransientResult::waveform: section was not recorded");
}

bool TransientResult::records(SectionId node) const {
  if (probe_ids.empty()) {
    return node >= 0 && static_cast<std::size_t>(node) < node_voltage.size();
  }
  return std::find(probe_ids.begin(), probe_ids.end(), node) != probe_ids.end();
}

TreeStepper::TreeStepper(const RlcTree& tree) : tree_(&tree) {
  if (tree.empty()) throw std::invalid_argument("TreeStepper: empty tree");
  const std::size_t n = tree.size();
  state_.i_l.assign(n, 0.0);
  state_.v_l.assign(n, 0.0);
  state_.i_c.assign(n, 0.0);
  state_.v_node.assign(n, 0.0);
  state_.time = 0.0;
  g_eq_.resize(n);
  j_eq_.resize(n);
  g_node_.resize(n);
  j_node_.resize(n);
  r_b_.resize(n);
  e_b_.resize(n);
  i_b_.resize(n);
}

void TreeStepper::step(double h, double v_in_next, Method method) {
  if (h <= 0.0) throw std::invalid_argument("TreeStepper::step: h must be positive");
  const RlcTree& tree = *tree_;
  const std::size_t n = tree.size();
  const bool trapezoidal = method == Method::kTrapezoidal;

  // Companion elements from history (trapezoidal or backward Euler).
  for (std::size_t i = 0; i < n; ++i) {
    const auto& v = tree.section(static_cast<SectionId>(i)).v;
    if (trapezoidal) {
      const double rl = 2.0 * v.inductance / h;
      r_b_[i] = v.resistance + rl;
      e_b_[i] = -(rl * state_.i_l[i] + state_.v_l[i]);
      const double gc = 2.0 * v.capacitance / h;
      g_node_[i] = gc;
      j_node_[i] = gc * state_.v_node[i] + state_.i_c[i];
    } else {
      const double rl = v.inductance / h;
      r_b_[i] = v.resistance + rl;
      e_b_[i] = -(rl * state_.i_l[i]);
      const double gc = v.capacitance / h;
      g_node_[i] = gc;
      j_node_[i] = gc * state_.v_node[i];
    }
  }

  // Upward sweep (children have larger ids than parents by construction):
  // collapse each section + its subtree into a Norton pair at the parent.
  for (std::size_t ii = n; ii-- > 0;) {
    const auto id = static_cast<SectionId>(ii);
    if (g_node_[ii] > 0.0) {
      const double denom = 1.0 + r_b_[ii] * g_node_[ii];
      const double ge = g_node_[ii] / denom;
      const double v_off = e_b_[ii] + j_node_[ii] / g_node_[ii];
      g_eq_[ii] = ge;
      j_eq_[ii] = ge * v_off;
    } else {
      // No shunt path at/below this node: the branch carries the (fixed)
      // injected history current.
      g_eq_[ii] = 0.0;
      j_eq_[ii] = j_node_[ii];
    }
    const SectionId parent = tree.section(id).parent;
    if (parent != circuit::kInput) {
      // KCL at the parent node: the branch contributes conductance g_eq
      // and injects +j_eq.
      const auto p = static_cast<std::size_t>(parent);
      g_node_[p] += g_eq_[ii];
      j_node_[p] += j_eq_[ii];
    }
  }

  // Downward sweep: branch currents from the collapsed Norton pairs, node
  // voltages from the local branch relation v_p - v_i = r_b*i + e_b.
  std::vector<double> v_prev = state_.v_node;  // needed for the C history
  for (std::size_t ii = 0; ii < n; ++ii) {
    const auto id = static_cast<SectionId>(ii);
    const SectionId parent = tree.section(id).parent;
    const double v_p =
        parent == circuit::kInput ? v_in_next : state_.v_node[static_cast<std::size_t>(parent)];
    const double cur = g_node_[ii] > 0.0 ? g_eq_[ii] * v_p - j_eq_[ii] : -j_node_[ii];
    i_b_[ii] = cur;
    state_.v_node[ii] = v_p - r_b_[ii] * cur - e_b_[ii];
  }

  // Update companion histories.
  for (std::size_t ii = 0; ii < n; ++ii) {
    const auto& v = tree.section(static_cast<SectionId>(ii)).v;
    const double rl = (trapezoidal ? 2.0 : 1.0) * v.inductance / h;
    const double gc = (trapezoidal ? 2.0 : 1.0) * v.capacitance / h;
    double i_c_new;
    if (trapezoidal) {
      i_c_new = gc * state_.v_node[ii] - (gc * v_prev[ii] + state_.i_c[ii]);
    } else {
      i_c_new = gc * (state_.v_node[ii] - v_prev[ii]);
    }
    state_.v_l[ii] = v.inductance > 0.0 ? rl * i_b_[ii] + e_b_[ii] : 0.0;
    state_.i_l[ii] = i_b_[ii];
    state_.i_c[ii] = v.capacitance > 0.0 ? i_c_new : 0.0;
  }
  state_.time += h;
}

TransientResult simulate_tree(const RlcTree& tree, const Source& source,
                              const TransientOptions& opts) {
  if (tree.empty()) throw std::invalid_argument("simulate_tree: empty tree");
  // The flat SoA engine is bitwise-identical to the historical TreeStepper
  // loop, so every caller transparently gets the fast path; TreeStepper
  // remains available as the equivalence oracle.
  return simulate_tree(circuit::FlatTree(tree), source, opts);
}

double suggest_timestep(const RlcTree& tree, double fraction) {
  double tmin = std::numeric_limits<double>::infinity();
  for (const auto& s : tree.sections()) {
    const double lc = s.v.inductance * s.v.capacitance;
    if (lc > 0.0) tmin = std::min(tmin, std::sqrt(lc));
    const double rc = s.v.resistance * s.v.capacitance;
    if (rc > 0.0) tmin = std::min(tmin, rc);
  }
  if (!std::isfinite(tmin)) throw std::invalid_argument("suggest_timestep: degenerate tree");
  return fraction * tmin;
}

}  // namespace relmore::sim
