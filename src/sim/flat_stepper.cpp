#include "relmore/sim/flat_stepper.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace relmore::sim {

using circuit::FlatTree;
using circuit::SectionId;

FlatStepper::FlatStepper(const FlatTree& tree) : tree_(&tree) {
  if (tree.empty()) throw std::invalid_argument("FlatStepper: empty tree");
  const std::size_t n = tree.size();
  state_.i_l.assign(n, 0.0);
  state_.v_l.assign(n, 0.0);
  state_.i_c.assign(n, 0.0);
  state_.v_node.assign(n, 0.0);
  state_.time = 0.0;
  v_prev_.resize(n);
  e_b_.resize(n);
  j_.resize(n);
  j_eq_.resize(n);
  i_b_.resize(n);
}

void FlatStepper::set_state(State s) {
  const std::size_t n = tree_->size();
  if (s.i_l.size() != n || s.v_l.size() != n || s.i_c.size() != n || s.v_node.size() != n) {
    throw std::invalid_argument("FlatStepper::set_state: state size mismatch");
  }
  state_ = std::move(s);
}

void FlatStepper::swap_state(FlatStepper& other) {
  if (other.tree_->size() != tree_->size()) {
    throw std::invalid_argument("FlatStepper::swap_state: topology size mismatch");
  }
  std::swap(state_.i_l, other.state_.i_l);
  std::swap(state_.v_l, other.state_.v_l);
  std::swap(state_.i_c, other.state_.i_c);
  std::swap(state_.v_node, other.state_.v_node);
  std::swap(state_.time, other.state_.time);
}

const FlatStepper::Factors& FlatStepper::factors(double h, Method method) {
  for (const Factors& f : cache_) {
    if (f.h == h && f.method == method) return f;
  }
  Factors& f = cache_[next_slot_];
  next_slot_ = (next_slot_ + 1) % 2;
  ++factorizations_built_;

  const std::size_t n = tree_->size();
  const double* res = tree_->resistance().data();
  const double* ind = tree_->inductance().data();
  const double* cap = tree_->capacitance().data();
  const SectionId* parent = tree_->parent().data();
  const bool trapezoidal = method == Method::kTrapezoidal;

  f.h = h;
  f.method = method;
  f.rl.resize(n);
  f.gc.resize(n);
  f.r_b.resize(n);
  f.g_node.resize(n);
  f.g_eq.resize(n);

  // Same expressions and association order as TreeStepper's companion loop,
  // minus the state-dependent terms.
  for (std::size_t i = 0; i < n; ++i) {
    const double rl = trapezoidal ? 2.0 * ind[i] / h : ind[i] / h;
    const double gc = trapezoidal ? 2.0 * cap[i] / h : cap[i] / h;
    f.rl[i] = rl;
    f.gc[i] = gc;
    f.r_b[i] = res[i] + rl;
    f.g_node[i] = gc;
  }
  // Upward conductance collapse — the accumulation order matches the
  // oracle's reverse-id sweep (children carry larger ids than parents).
  for (std::size_t ii = n; ii-- > 0;) {
    if (f.g_node[ii] > 0.0) {
      const double denom = 1.0 + f.r_b[ii] * f.g_node[ii];
      f.g_eq[ii] = f.g_node[ii] / denom;
    } else {
      f.g_eq[ii] = 0.0;
    }
    const SectionId p = parent[ii];
    if (p != circuit::kInput) f.g_node[static_cast<std::size_t>(p)] += f.g_eq[ii];
  }
  return f;
}

void FlatStepper::step(double h, double v_in_next, Method method) {
  if (h <= 0.0) throw std::invalid_argument("FlatStepper::step: h must be positive");
  const Factors& f = factors(h, method);
  // The history sweep writes v_node in place; the capacitor history needs
  // the pre-step voltages, so stage them in the preallocated scratch.
  std::copy(state_.v_node.begin(), state_.v_node.end(), v_prev_.begin());
  advance(state_.i_l.data(), state_.v_l.data(), state_.i_c.data(), v_prev_.data(), state_.time,
          h, v_in_next, f);
}

void FlatStepper::step_from(const State& src, double h, double v_in_next, Method method) {
  if (&src == &state_) {
    step(h, v_in_next, method);
    return;
  }
  if (h <= 0.0) throw std::invalid_argument("FlatStepper::step_from: h must be positive");
  const std::size_t n = tree_->size();
  if (src.i_l.size() != n || src.v_l.size() != n || src.i_c.size() != n ||
      src.v_node.size() != n) {
    throw std::invalid_argument("FlatStepper::step_from: state size mismatch");
  }
  const Factors& f = factors(h, method);
  // `src` is external: its arrays are stable while we overwrite our own
  // state, so no staging copy is needed — a zero-copy trial step.
  advance(src.i_l.data(), src.v_l.data(), src.i_c.data(), src.v_node.data(), src.time, h,
          v_in_next, f);
}

void FlatStepper::advance(const double* i_l_old, const double* v_l_old, const double* i_c_old,
                          const double* v_old, double src_time, double h, double v_in_next,
                          const Factors& f) {
  const std::size_t n = tree_->size();
  const SectionId* parent = tree_->parent().data();
  const double* rl = f.rl.data();
  const double* gc = f.gc.data();
  const double* r_b = f.r_b.data();
  const double* g_node = f.g_node.data();
  const double* g_eq = f.g_eq.data();
  const bool trapezoidal = f.method == Method::kTrapezoidal;
  double* e_b = e_b_.data();
  double* j = j_.data();
  double* j_eq = j_eq_.data();
  double* i_b = i_b_.data();
  double* v_new = state_.v_node.data();

  // relmore-lint: begin-hot-loop(flat-stepper-advance)
  // State-dependent companion sources (the conductances live in `f`).
  if (trapezoidal) {
    for (std::size_t i = 0; i < n; ++i) {
      e_b[i] = -(rl[i] * i_l_old[i] + v_l_old[i]);
      j[i] = gc[i] * v_old[i] + i_c_old[i];
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      e_b[i] = -(rl[i] * i_l_old[i]);
      j[i] = gc[i] * v_old[i];
    }
  }

  // Upward sweep: only the Norton source currents accumulate now; the one
  // remaining division is the state-dependent j/g_node. ge·(e_b + j/g)
  // reproduces the oracle's ge·v_off bit for bit.
  for (std::size_t ii = n; ii-- > 0;) {
    const double je =
        g_node[ii] > 0.0 ? g_eq[ii] * (e_b[ii] + j[ii] / g_node[ii]) : j[ii];
    j_eq[ii] = je;
    const SectionId p = parent[ii];
    if (p != circuit::kInput) j[static_cast<std::size_t>(p)] += je;
  }

  // Downward sweep: branch currents and node voltages in id order (parents
  // are finalized before their children read them).
  for (std::size_t ii = 0; ii < n; ++ii) {
    const SectionId p = parent[ii];
    const double v_p = p == circuit::kInput ? v_in_next : v_new[static_cast<std::size_t>(p)];
    const double cur = g_node[ii] > 0.0 ? g_eq[ii] * v_p - j_eq[ii] : -j[ii];
    i_b[ii] = cur;
    v_new[ii] = v_p - r_b[ii] * cur - e_b[ii];
  }

  // Companion history update. `gc·v_old + i_c_old` recomputes the oracle's
  // j_node expression exactly (j[] was consumed by the accumulation).
  const double* ind = tree_->inductance().data();
  const double* cap = tree_->capacitance().data();
  double* i_l = state_.i_l.data();
  double* v_l = state_.v_l.data();
  double* i_c = state_.i_c.data();
  if (trapezoidal) {
    for (std::size_t ii = 0; ii < n; ++ii) {
      const double i_c_new = gc[ii] * v_new[ii] - (gc[ii] * v_old[ii] + i_c_old[ii]);
      v_l[ii] = ind[ii] > 0.0 ? rl[ii] * i_b[ii] + e_b[ii] : 0.0;
      i_l[ii] = i_b[ii];
      i_c[ii] = cap[ii] > 0.0 ? i_c_new : 0.0;
    }
  } else {
    for (std::size_t ii = 0; ii < n; ++ii) {
      const double i_c_new = gc[ii] * (v_new[ii] - v_old[ii]);
      v_l[ii] = ind[ii] > 0.0 ? rl[ii] * i_b[ii] + e_b[ii] : 0.0;
      i_l[ii] = i_b[ii];
      i_c[ii] = cap[ii] > 0.0 ? i_c_new : 0.0;
    }
  }
  // relmore-lint: end-hot-loop
  state_.time = src_time + h;
}

namespace {

void validate_transient(const FlatTree& tree, const TransientOptions& opts, const char* who) {
  if (tree.empty()) throw std::invalid_argument(std::string(who) + ": empty tree");
  if (opts.t_stop <= 0.0 || opts.dt <= 0.0) {
    throw std::invalid_argument(std::string(who) + ": t_stop and dt must be positive");
  }
}

void validate_probes(const std::vector<SectionId>& probes, std::size_t n, const char* who) {
  for (const SectionId id : probes) {
    if (id < 0 || static_cast<std::size_t>(id) >= n) {
      throw std::out_of_range(std::string(who) + ": probe id out of range");
    }
  }
}

}  // namespace

TransientResult simulate_tree(const FlatTree& tree, const Source& source,
                              const TransientOptions& opts) {
  validate_transient(tree, opts, "simulate_tree");
  const std::size_t n = tree.size();
  validate_probes(opts.probes, n, "simulate_tree");
  const auto steps = static_cast<std::size_t>(std::ceil(opts.t_stop / opts.dt));
  const bool all = opts.probes.empty();
  const std::size_t rows = all ? n : opts.probes.size();

  TransientResult out;
  out.probe_ids = opts.probes;
  out.time.reserve(steps + 1);
  out.node_voltage.assign(rows, {});
  for (auto& v : out.node_voltage) v.reserve(steps + 1);
  out.time.push_back(0.0);
  for (auto& v : out.node_voltage) v.push_back(0.0);

  FlatStepper stepper(tree);
  const double h = opts.dt;
  for (std::size_t step = 1; step <= steps; ++step) {
    const double t = static_cast<double>(step) * h;
    const auto method = static_cast<int>(step) > opts.be_startup_steps
                            ? FlatStepper::Method::kTrapezoidal
                            : FlatStepper::Method::kBackwardEuler;
    stepper.step(h, source_value(source, t), method);
    out.time.push_back(t);
    const std::vector<double>& v = stepper.voltages();
    if (all) {
      for (std::size_t ii = 0; ii < n; ++ii) out.node_voltage[ii].push_back(v[ii]);
    } else {
      for (std::size_t r = 0; r < rows; ++r) {
        out.node_voltage[r].push_back(v[static_cast<std::size_t>(opts.probes[r])]);
      }
    }
  }
  return out;
}

std::vector<double> simulate_first_crossings(const FlatTree& tree, const Source& source,
                                             const TransientOptions& opts,
                                             const std::vector<SectionId>& probes,
                                             double threshold) {
  validate_transient(tree, opts, "simulate_first_crossings");
  validate_probes(probes, tree.size(), "simulate_first_crossings");
  const std::size_t m = probes.size();
  std::vector<double> cross(m, -1.0);
  if (m == 0) return cross;
  const auto steps = static_cast<std::size_t>(std::ceil(opts.t_stop / opts.dt));

  // Ring of the last sample per probe — all the state the interpolated
  // crossing needs. Initial condition is 0 V everywhere at t = 0.
  std::vector<double> prev_v(m, 0.0);
  std::vector<char> crossed(m, 0);
  std::size_t remaining = m;

  FlatStepper stepper(tree);
  const double h = opts.dt;
  double t_prev = 0.0;
  for (std::size_t step = 1; step <= steps; ++step) {
    const double t = static_cast<double>(step) * h;
    const auto method = static_cast<int>(step) > opts.be_startup_steps
                            ? FlatStepper::Method::kTrapezoidal
                            : FlatStepper::Method::kBackwardEuler;
    stepper.step(h, source_value(source, t), method);
    const std::vector<double>& volt = stepper.voltages();
    for (std::size_t r = 0; r < m; ++r) {
      const double v = volt[static_cast<std::size_t>(probes[r])];
      if (!crossed[r] && prev_v[r] < threshold && v >= threshold) {
        // Waveform::first_rise_crossing's interpolation, verbatim.
        const double w = (threshold - prev_v[r]) / (v - prev_v[r]);
        cross[r] = t_prev + w * (t - t_prev);
        crossed[r] = 1;
        --remaining;
      }
      prev_v[r] = v;
    }
    // Early exit is only sound when the interior-crossing rule can still
    // fire for an uncrossed probe; with threshold <= 0 the front-sample
    // fallback below governs uncrossed probes, and it needs the full run.
    if (remaining == 0 && threshold > 0.0) return cross;
    t_prev = t;
  }
  // Front-sample fallback, matching Waveform::first_rise_crossing: with no
  // interior crossing and v(0) = 0 >= threshold, the crossing is t = 0.
  if (0.0 >= threshold) {
    for (std::size_t r = 0; r < m; ++r) {
      if (!crossed[r]) cross[r] = 0.0;
    }
  }
  return cross;
}

}  // namespace relmore::sim
