#include "relmore/sim/waveform_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace relmore::sim {

void write_waveform_csv(const Waveform& w, std::ostream& os, const std::string& label) {
  os << "time," << label << "\n";
  os.precision(17);
  for (std::size_t i = 0; i < w.size(); ++i) {
    os << w.times()[i] << "," << w.values()[i] << "\n";
  }
}

Waveform read_waveform_csv(std::istream& is) {
  std::vector<double> t;
  std::vector<double> v;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string t_cell;
    std::string v_cell;
    if (!std::getline(ss, t_cell, ',') || !std::getline(ss, v_cell, ',')) {
      throw std::invalid_argument("read_waveform_csv: line " + std::to_string(line_no) +
                                  ": need at least two columns");
    }
    double tv = 0.0;
    double vv = 0.0;
    try {
      tv = std::stod(t_cell);
      vv = std::stod(v_cell);
    } catch (const std::exception&) {
      if (line_no == 1) continue;  // header row
      throw std::invalid_argument("read_waveform_csv: line " + std::to_string(line_no) +
                                  ": malformed number");
    }
    t.push_back(tv);
    v.push_back(vv);
  }
  if (t.empty()) throw std::invalid_argument("read_waveform_csv: no samples");
  return Waveform(std::move(t), std::move(v));  // validates monotone time
}

void write_transient_csv(const TransientResult& result, std::ostream& os,
                         const std::vector<std::string>& labels) {
  const std::size_t n = result.node_voltage.size();
  if (!labels.empty() && labels.size() != n) {
    throw std::invalid_argument("write_transient_csv: label count mismatch");
  }
  os << "time";
  for (std::size_t i = 0; i < n; ++i) {
    os << "," << (labels.empty() ? "n" + std::to_string(i) : labels[i]);
  }
  os << "\n";
  os.precision(17);
  for (std::size_t s = 0; s < result.time.size(); ++s) {
    os << result.time[s];
    for (std::size_t i = 0; i < n; ++i) os << "," << result.node_voltage[i][s];
    os << "\n";
  }
}

}  // namespace relmore::sim
