#include "relmore/sim/measure.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace relmore::sim {

std::optional<double> settling_time(const Waveform& w, double v_final, double band) {
  if (w.empty()) throw std::invalid_argument("settling_time: empty waveform");
  // The band is relative (±band·v_final), so v_final == 0 collapses it to a
  // single point and any nonzero sample would "never settle" while an
  // all-zero waveform would "settle at t=0" — neither is meaningful.
  // Contract: no finite nonzero reference, no settling time.
  if (!std::isfinite(v_final) || v_final == 0.0) return std::nullopt;
  // min/max keeps the band ordered for negative finals (falling waveforms).
  const double lo = std::min(v_final * (1.0 - band), v_final * (1.0 + band));
  const double hi = std::max(v_final * (1.0 - band), v_final * (1.0 + band));
  const auto& t = w.times();
  const auto& v = w.values();
  // Walk backwards to the last sample outside the band.
  std::size_t last_outside = t.size();  // sentinel: none
  for (std::size_t i = t.size(); i-- > 0;) {
    if (v[i] < lo || v[i] > hi) {
      last_outside = i;
      break;
    }
  }
  if (last_outside == t.size()) return t.front();
  if (last_outside + 1 >= t.size()) return std::nullopt;  // still outside at the end
  // Interpolate the band crossing between last_outside and the next sample.
  const double bound = v[last_outside] > hi ? hi : lo;
  const double dv = v[last_outside + 1] - v[last_outside];
  double frac = dv != 0.0 ? (bound - v[last_outside]) / dv : 1.0;
  frac = std::clamp(frac, 0.0, 1.0);
  return t[last_outside] + frac * (t[last_outside + 1] - t[last_outside]);
}

TimingMeasurement measure_rising(const Waveform& w, double v_final, double settle_band) {
  if (w.empty()) throw std::invalid_argument("measure_rising: empty waveform");
  if (v_final <= 0.0) throw std::invalid_argument("measure_rising: v_final must be positive");
  TimingMeasurement m;
  m.delay_50 = w.first_rise_crossing(0.5 * v_final);
  const double t10 = w.first_rise_crossing(0.1 * v_final);
  const double t90 = w.first_rise_crossing(0.9 * v_final);
  if (t10 >= 0.0 && t90 >= 0.0) m.rise_10_90 = t90 - t10;
  m.peak_value = w.max_value();
  const auto& v = w.values();
  const std::size_t peak_idx = static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
  m.peak_time = w.times()[peak_idx];
  m.overshoot_pct = std::max(0.0, 100.0 * (m.peak_value - v_final) / v_final);
  if (const auto ts = settling_time(w, v_final, settle_band)) m.settling_time = *ts;
  return m;
}

}  // namespace relmore::sim
