#pragma once

/// \file tree_transient.hpp
/// Fast transient engine specialized to RLC trees.
///
/// Trapezoidal companion models turn each timestep into a *resistive tree
/// with sources*, which is solved exactly in O(n) with one upward Norton
/// collapse and one downward voltage-distribution sweep — no matrix is ever
/// assembled. The first few steps use backward-Euler companions to damp the
/// trapezoidal ringing an ideal step otherwise excites. This engine is the
/// workhorse reference simulator (our AS/X stand-in); MnaTransient and the
/// modal solver cross-check it.

#include <vector>

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/sim/source.hpp"
#include "relmore/sim/waveform.hpp"
#include "relmore/util/deadline.hpp"

namespace relmore::sim {

struct TransientOptions {
  double t_stop = 0.0;        ///< required: simulation end time
  double dt = 0.0;            ///< required: fixed timestep
  int be_startup_steps = 2;   ///< backward-Euler steps before switching to trapezoidal
  /// Sections to record. Empty (the default) records every section, one
  /// row per id, as always. Non-empty switches to probe-selective
  /// recording: one row per listed probe, in list order, so result memory
  /// and store traffic scale with the probe count rather than the tree
  /// size. The simulated voltages are identical either way.
  std::vector<circuit::SectionId> probes;
  /// Cooperative deadline/cancellation, honored by sim::BatchSimulator
  /// (polled at lane-group boundaries and every 256 steps, outside the
  /// hot loops). A tripped control aborts the whole call with
  /// util::FaultError carrying kDeadlineExceeded / kCancelled — transient
  /// waveforms have no per-run partial-result story (a half-integrated
  /// run is not a usable waveform), unlike the analysis-side engines.
  /// The scalar single-tree paths ignore it. The caller keeps
  /// `run_control.cancel` (when non-null) alive for the call's duration.
  util::RunControl run_control;
};

/// Node voltages sampled at every timestep for the recorded sections.
struct TransientResult {
  std::vector<double> time;
  std::vector<std::vector<double>> node_voltage;  ///< [row][step]
  /// Section recorded by each row. Empty means full recording (row == id),
  /// preserving the historical layout; otherwise echoes the probe list.
  std::vector<circuit::SectionId> probe_ids;

  /// Waveform of one section. Throws std::out_of_range when the section
  /// was not recorded (probe-selective run without it).
  [[nodiscard]] Waveform waveform(circuit::SectionId node) const;
  /// Whether `node` has a recorded row.
  [[nodiscard]] bool records(circuit::SectionId node) const;
};

/// Simulates the tree from zero initial conditions with an ideal voltage
/// source at the input. Throws std::invalid_argument on bad options.
TransientResult simulate_tree(const circuit::RlcTree& tree, const Source& source,
                              const TransientOptions& opts);

/// Picks a conservative timestep for the tree: a fraction of the fastest
/// section's characteristic time min(sqrt(LC), RC, L/R over nonzero values).
double suggest_timestep(const circuit::RlcTree& tree, double fraction = 0.02);

}  // namespace relmore::sim
