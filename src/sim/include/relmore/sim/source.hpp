#pragma once

/// \file source.hpp
/// Input waveforms applied at the tree's input node. The paper analyses a
/// step input (worst case, §V-A), an exponential input (eq. 43), and argues
/// the model works for arbitrary inputs; PWL covers ramps and general
/// test vectors.

#include <stdexcept>
#include <utility>
#include <variant>
#include <vector>

namespace relmore::sim {

/// Ideal step: 0 for t < 0, `volts` for t >= 0.
struct StepSource {
  double volts = 1.0;
};

/// Linear ramp 0 -> volts over [0, rise_seconds], then flat.
struct RampSource {
  double volts = 1.0;
  double rise_seconds = 1e-9;
};

/// Saturating exponential `volts * (1 - exp(-t/tau))` (paper eq. 43).
/// The 90% rise time of this source is 2.3 * tau (paper §V-A).
struct ExpSource {
  double volts = 1.0;
  double tau_seconds = 1e-9;
};

/// Piecewise-linear source through (t, v) breakpoints; clamps outside.
struct PwlSource {
  std::vector<std::pair<double, double>> points;
};

using Source = std::variant<StepSource, RampSource, ExpSource, PwlSource>;

/// Source value at time t (t < 0 returns the t=0 limit from below, i.e. 0
/// for the canonical sources).
[[nodiscard]] double source_value(const Source& src, double t);

/// Final (t -> inf) value of the source.
[[nodiscard]] double source_final_value(const Source& src);

}  // namespace relmore::sim
