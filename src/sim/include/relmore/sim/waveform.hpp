#pragma once

/// \file waveform.hpp
/// Sampled signal with linear interpolation — the lingua franca between the
/// transient engines, the closed-form models, and the measurement code.

#include <cstddef>
#include <vector>

namespace relmore::sim {

/// A sampled waveform v(t) on a strictly increasing time grid.
class Waveform {
 public:
  Waveform() = default;
  Waveform(std::vector<double> times, std::vector<double> values);

  [[nodiscard]] std::size_t size() const { return t_.size(); }
  [[nodiscard]] bool empty() const { return t_.empty(); }
  [[nodiscard]] const std::vector<double>& times() const { return t_; }
  [[nodiscard]] const std::vector<double>& values() const { return v_; }
  [[nodiscard]] double t_begin() const;
  [[nodiscard]] double t_end() const;

  /// Linear interpolation; clamps outside the sampled range.
  [[nodiscard]] double value_at(double t) const;

  /// First time v crosses `threshold` going upward, linearly interpolated;
  /// returns a negative value when no crossing exists.
  [[nodiscard]] double first_rise_crossing(double threshold) const;

  /// Global extrema of the sampled values.
  [[nodiscard]] double max_value() const;
  [[nodiscard]] double min_value() const;

  /// Last sampled value (steady-state estimate for settled waveforms).
  [[nodiscard]] double final_value() const;

  /// max_t |this(t) − other(t)| evaluated on this waveform's grid.
  [[nodiscard]] double max_abs_difference(const Waveform& other) const;

 private:
  std::vector<double> t_;
  std::vector<double> v_;
};

/// Uniform time grid [0, t_stop] with `samples` points (samples >= 2).
std::vector<double> uniform_grid(double t_stop, std::size_t samples);

}  // namespace relmore::sim
