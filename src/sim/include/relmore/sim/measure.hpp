#pragma once

/// \file measure.hpp
/// Standard timing measurements extracted from simulated waveforms: the
/// quantities the paper characterizes in closed form (50% delay, 10–90%
/// rise time, overshoot, settling time), measured here numerically so the
/// closed forms can be scored against simulation.

#include <optional>

#include "relmore/sim/waveform.hpp"

namespace relmore::sim {

/// Measured timing parameters of a (possibly non-monotone) rising response.
struct TimingMeasurement {
  double delay_50 = -1.0;       ///< first crossing of 50% of final value
  double rise_10_90 = -1.0;     ///< t(90%) − t(10%), first crossings
  double peak_value = 0.0;      ///< global maximum of the waveform
  double overshoot_pct = 0.0;   ///< 100·(peak − final)/final, clamped at 0
  double peak_time = -1.0;      ///< time of the global maximum
  double settling_time = -1.0;  ///< last excursion beyond ±x·final (−1 if never settles)
};

/// Measures a rising waveform against the reference final value
/// `v_final` (pass the supply voltage; using the last sample would bias
/// underdamped waveforms that have not fully rung down).
/// `settle_band` is the paper's `x` (default 0.1 = ±10%).
[[nodiscard]] TimingMeasurement measure_rising(const Waveform& w, double v_final, double settle_band = 0.1);

/// First time after which the waveform stays within ±band·v_final of
/// v_final; std::nullopt when it never settles inside the sampled window.
/// The band is relative, so `v_final == 0` (or a non-finite v_final) has no
/// meaningful band — the contract is std::nullopt, never a fabricated time.
[[nodiscard]] std::optional<double> settling_time(const Waveform& w, double v_final, double band);

}  // namespace relmore::sim
