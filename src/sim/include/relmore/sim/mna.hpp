#pragma once

/// \file mna.hpp
/// Generic modified-nodal-analysis transient engine.
///
/// Unknowns are all node voltages plus all branch (inductor) currents,
/// giving the descriptor system  E x' = F x + g u(t).  A fixed-step
/// trapezoidal discretization factors (E/h − F/2) once per run and
/// back-solves every step. Slower than the specialized tree engine but
/// derived independently (matrix stamps instead of Norton sweeps), so
/// agreement between the two is a strong correctness signal; it also
/// tolerates zero L or zero C sections, which the modal solver does not.

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/linalg/matrix.hpp"
#include "relmore/sim/source.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::sim {

/// Descriptor-form matrices of a tree: E x' = F x + g u with
/// x = [v_0..v_{n-1}, j_0..j_{n-1}].
struct MnaSystem {
  linalg::Matrix E;
  linalg::Matrix F;
  std::vector<double> g;
};

/// Stamps the tree into descriptor form.
[[nodiscard]] MnaSystem build_mna(const circuit::RlcTree& tree);

/// Trapezoidal transient on the MNA system; same options/result contract as
/// simulate_tree(). (be_startup_steps is honored the same way.)
[[nodiscard]] TransientResult simulate_mna(const circuit::RlcTree& tree, const Source& source,
                             const TransientOptions& opts);

}  // namespace relmore::sim
