#pragma once

/// \file batch_sim.hpp
/// Batched same-topology transient simulation: one tree, S (source, value)
/// runs, AoSoA layout, lane-per-run — the simulator-side sibling of
/// engine::BatchedAnalyzer.
///
/// The simulation-anchored workloads (ablation sweeps, simulation-guided
/// buffer insertion, Monte-Carlo waveform studies) re-run the *same
/// topology* with different element values and sources hundreds of times.
/// `BatchSimulator` fixes the topology once (a `circuit::FlatTree`
/// snapshot) and lays the S value sets out AoSoA: runs are grouped into
/// lane-groups of width W (1, 2, 4, or 8 doubles), and within a group the
/// values — and the whole integration state — of section i are stored as W
/// adjacent doubles, one lane per run:
///
///   values[group][section i][lane t]  =  run (group·W + t)'s value of i
///
/// Each timestep then runs the FlatStepper sweeps once per lane-group with
/// fixed-width inner lane loops (`#pragma omp simd`, no intrinsics). Every
/// lane executes exactly the scalar FlatStepper's operations in exactly its
/// association order — divisions by a possibly-zero g_node go through a
/// select of a safe divisor, which is bitwise-free for live lanes and only
/// suppresses spurious Inf/NaN in lanes whose g_node is zero — so each
/// run's waveforms are *bitwise identical* to a scalar `FlatStepper` run of
/// that lane's tree (and hence, by FlatStepper's own contract, to the
/// `TreeStepper` oracle). Results are therefore independent of the lane
/// width and of how lane-groups are scheduled across threads.
///
/// Lane-groups are independent; a `BatchAnalyzer` pool (RELMORE_THREADS)
/// fans them across cores with outputs written to disjoint ranges.
/// Recording is probe-selective, as in simulate_tree, and the streaming
/// first_crossings path keeps only a one-sample ring per lane.
///
/// Working-set control: each timestep's downward sweep is tiled into
/// blocks of sections sized by `engine::KernelTuner` (overridable with
/// `RELMORE_TUNE=WxT` or `set_tile_rows`) so the per-step state stays
/// inside L2 at large n, and probe recording drains through the tile
/// sink while rows are still cache-hot. Tiling changes only the *touch*
/// order of independent per-section updates, never any reduction order,
/// so every configuration remains bitwise-equal to the scalar
/// FlatStepper. See docs/sim.md.

#include <cstddef>
#include <vector>

#include "relmore/circuit/flat_tree.hpp"
#include "relmore/sim/source.hpp"
#include "relmore/sim/tree_transient.hpp"
#include "relmore/sim/waveform.hpp"

namespace relmore::engine {
class BatchAnalyzer;
}

namespace relmore::sim {

/// Voltages of every recorded (run, probe, step) triple from one batched
/// simulation. All runs share the fixed-step time grid.
class BatchTransientResult {
 public:
  [[nodiscard]] std::size_t runs() const { return runs_; }
  [[nodiscard]] const std::vector<double>& time() const { return time_; }
  /// Sections recorded, in row order (every id when the simulate call's
  /// probe list was empty).
  [[nodiscard]] const std::vector<circuit::SectionId>& probe_ids() const { return ids_; }

  /// v(run, node) at time()[step]. Throws std::out_of_range on an
  /// unrecorded node or bad run/step.
  [[nodiscard]] double voltage(std::size_t run, circuit::SectionId node,
                               std::size_t step) const;
  /// Full waveform of (run, node); bitwise-equal to the corresponding
  /// scalar simulate_tree row.
  [[nodiscard]] Waveform waveform(std::size_t run, circuit::SectionId node) const;

 private:
  friend class BatchSimulator;
  [[nodiscard]] std::size_t row(circuit::SectionId node) const;

  std::size_t runs_ = 0;
  std::size_t padded_runs_ = 0;  ///< lane_groups * lane_width
  std::vector<double> time_;
  std::vector<circuit::SectionId> ids_;  ///< recorded section per row
  std::vector<int> row_of_;              ///< id -> row, -1 when unrecorded
  /// [(row * samples + step) * padded_runs + run]; lane writes of one
  /// group land in W contiguous doubles.
  std::vector<double> v_;
};

/// Same-topology batched transient simulator: topology fixed at
/// construction, per-run values and sources filled in, then S lock-step
/// integrations per kernel sweep. Like FlatStepper (and unlike the
/// analysis-side BatchedAnalyzer) it does not validate element values —
/// the simulator contract is caller-prepared trees.
class BatchSimulator {
 public:
  /// `lane_width` must be 1, 2, 4, or 8; 0 lets engine::KernelTuner pick
  /// (auto-calibrated, overridable via RELMORE_TUNE). Throws
  /// std::invalid_argument on other widths or an empty topology.
  explicit BatchSimulator(circuit::FlatTree topology, std::size_t lane_width = 0);

  [[nodiscard]] const circuit::FlatTree& topology() const { return topo_; }
  [[nodiscard]] std::size_t sections() const { return topo_.size(); }
  [[nodiscard]] std::size_t lane_width() const { return lane_width_; }
  [[nodiscard]] std::size_t runs() const { return runs_; }
  [[nodiscard]] std::size_t lane_groups() const { return groups_; }

  /// Sets the run count and (re)initializes every run — padding lanes of
  /// the last group included — to the snapshot's nominal values driven by
  /// a unit StepSource.
  void resize(std::size_t runs);

  /// Input source of run `s` (every run starts as StepSource{1.0}).
  void set_source(std::size_t s, Source source);
  /// Overwrites run `s`'s element values from arrays of length
  /// sections(). Safe to call concurrently for distinct `s`.
  void set_run(std::size_t s, const double* resistance, const double* inductance,
               const double* capacitance);
  /// Overwrites one section of one run.
  void set_run_section(std::size_t s, circuit::SectionId id, const circuit::SectionValues& v);

  /// Overrides the downward-sweep tile size (rows per tile) for
  /// subsequent simulate/first_crossings calls. 0 restores auto
  /// calibration via engine::KernelTuner. Explicit values — including
  /// degenerate ones (1, or >= sections(), which behaves untiled) — are
  /// used as-is; every setting is bitwise-equivalent.
  void set_tile_rows(std::size_t tile_rows);
  /// The explicit tile override (0 = auto).
  [[nodiscard]] std::size_t tile_rows() const { return tile_rows_; }

  /// Simulates every run from zero initial conditions over the fixed-step
  /// grid of `opts` (probe-selective via opts.probes; empty records every
  /// section). `pool` (optional) distributes lane-groups across workers;
  /// results are bitwise independent of the pool and lane width. Throws
  /// std::invalid_argument on bad options or zero runs.
  [[nodiscard]] BatchTransientResult simulate(const TransientOptions& opts,
                                              engine::BatchAnalyzer* pool = nullptr) const;

  /// Streaming batched measurement: the first upward crossing of
  /// `threshold` at `probe` for every run — one double per run, no
  /// waveform storage, early exit per lane-group once every live lane has
  /// crossed. Bitwise-equal to simulate + Waveform::first_rise_crossing
  /// (negative = no crossing within t_stop). `opts.probes` is ignored.
  [[nodiscard]] std::vector<double> first_crossings(const TransientOptions& opts,
                                                    circuit::SectionId probe, double threshold,
                                                    engine::BatchAnalyzer* pool = nullptr) const;

 private:
  [[nodiscard]] std::size_t value_slot(std::size_t s, std::size_t section) const;
  /// Effective tile for a sweep: the explicit override, else the tuner's
  /// sim plan for (sections, runs). 0 means untiled.
  [[nodiscard]] std::size_t resolved_tile_rows() const;

  circuit::FlatTree topo_;
  std::size_t lane_width_ = 0;
  std::size_t runs_ = 0;
  std::size_t groups_ = 0;
  std::size_t tile_rows_ = 0;  ///< explicit downward tile; 0 = auto
  /// AoSoA values, indexed [(group * sections + section) * lane_width + lane].
  std::vector<double> r_, l_, c_;
  /// One source per padded run (padding replicates StepSource{1.0}).
  std::vector<Source> sources_;
};

}  // namespace relmore::sim
