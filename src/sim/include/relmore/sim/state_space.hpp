#pragma once

/// \file state_space.hpp
/// Exact (discretization-free) transient solution of an RLC tree via
/// eigen-decomposition of its state-space model.
///
/// With states x = [inductor currents; capacitor voltages], an RLC tree in
/// which every section has L > 0 and C > 0 satisfies x' = A x + b u(t).
/// Expanding in the eigenbasis of A solves step, ramp, PWL (per affine
/// segment) and exponential inputs *analytically*: the returned samples
/// carry no time-stepping error, only rounding. This is the gold reference
/// that stands in for the paper's AS/X simulator (DESIGN.md §4); the
/// eigenvalues of A are the exact circuit poles, used directly by tests
/// and by the AWE comparison.

#include <span>
#include <vector>

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/linalg/eigen.hpp"
#include "relmore/linalg/matrix.hpp"
#include "relmore/sim/source.hpp"
#include "relmore/sim/waveform.hpp"

namespace relmore::sim {

/// State-space matrices of a strictly-RLC tree (all L > 0, all C > 0).
struct StateSpace {
  linalg::Matrix A;        ///< 2n x 2n
  std::vector<double> b;   ///< input vector: x' = A x + b u
  std::size_t sections = 0;

  /// State index of section i's inductor current / node voltage.
  [[nodiscard]] std::size_t current_index(circuit::SectionId i) const {
    return static_cast<std::size_t>(i);
  }
  [[nodiscard]] std::size_t voltage_index(circuit::SectionId i) const {
    return sections + static_cast<std::size_t>(i);
  }
};

/// Builds the state-space model; throws std::invalid_argument when any
/// section has L <= 0 or C <= 0 (use the companion-model engines there).
StateSpace build_state_space(const circuit::RlcTree& tree);

/// Exact transient solver. Construction performs the eigen-decomposition
/// (O(n^3)); every response afterwards is a cheap modal evaluation.
class ModalSolver {
 public:
  explicit ModalSolver(const circuit::RlcTree& tree);

  /// Exact circuit poles (eigenvalues of A).
  [[nodiscard]] const std::vector<linalg::Complex>& poles() const { return eig_.values; }

  /// Node voltage at the requested times for a zero-state response to
  /// `source`. Times must be non-decreasing and non-negative.
  [[nodiscard]] std::vector<double> response(circuit::SectionId node, const Source& source,
                                             std::span<const double> times) const;

  /// Convenience wrapper returning a Waveform on the given grid.
  [[nodiscard]] Waveform response_waveform(circuit::SectionId node, const Source& source,
                                           const std::vector<double>& times) const;

  /// Exact transfer function H(j·omega) from the input to node's voltage:
  /// solves (j w I - A) x = b and reads the voltage component. This is the
  /// frequency-domain gold reference for the closed-form models.
  [[nodiscard]] linalg::Complex transfer(circuit::SectionId node, double omega) const;

  /// Exact H(s) at arbitrary complex s (Laplace domain) — feeds the Talbot
  /// numerical inverse-Laplace cross check (util::invert_laplace_talbot).
  [[nodiscard]] linalg::Complex transfer_laplace(circuit::SectionId node,
                                                 linalg::Complex s) const;

 private:
  /// Full state at time offsets within one affine-input segment.
  struct Segment {
    double a = 0.0;  ///< u = a + b*(t - t0) on the segment
    double b = 0.0;
    double t0 = 0.0;
    double t1 = 0.0;  ///< +inf for the last segment
  };

  [[nodiscard]] std::vector<Segment> segments_for(const Source& source) const;
  void modal_coefficients(const std::vector<double>& mismatch,
                          std::vector<linalg::Complex>& coeff) const;

  StateSpace ss_;
  linalg::EigenSystem eig_;
  linalg::LuFactor lu_a_;  ///< factor of A for particular solutions
};

}  // namespace relmore::sim
