#pragma once

/// \file tree_stepper.hpp
/// Steppable core of the O(n)-per-step tree transient engine. Exposed so
/// the adaptive (step-doubling) driver can copy and roll back state; the
/// fixed-step simulate_tree() is a thin loop over it.

#include <vector>

#include "relmore/circuit/rlc_tree.hpp"

namespace relmore::sim {

/// Advances companion-model state of one RLC tree a timestep at a time.
/// The referenced tree must outlive the stepper.
class TreeStepper {
 public:
  enum class Method { kBackwardEuler, kTrapezoidal };

  /// Full integration state; value type so drivers can checkpoint/rollback.
  struct State {
    std::vector<double> i_l;     ///< inductor currents
    std::vector<double> v_l;     ///< inductor voltages
    std::vector<double> i_c;     ///< capacitor currents
    std::vector<double> v_node;  ///< node voltages
    double time = 0.0;
  };

  explicit TreeStepper(const circuit::RlcTree& tree);

  /// Advances by h with the input node held at `v_in_next` (the source
  /// value at the *end* of the step).
  void step(double h, double v_in_next, Method method);

  [[nodiscard]] const std::vector<double>& voltages() const { return state_.v_node; }
  [[nodiscard]] double time() const { return state_.time; }
  [[nodiscard]] const State& state() const { return state_; }
  void set_state(State s) { state_ = std::move(s); }

 private:
  const circuit::RlcTree* tree_;
  State state_;
  // Per-step scratch (members to avoid reallocation).
  std::vector<double> g_eq_;
  std::vector<double> j_eq_;
  std::vector<double> g_node_;
  std::vector<double> j_node_;
  std::vector<double> r_b_;
  std::vector<double> e_b_;
  std::vector<double> i_b_;
};

}  // namespace relmore::sim
