#pragma once

/// \file adaptive.hpp
/// Error-controlled transient simulation: wraps the fixed-step tree engine
/// in a step-doubling (Richardson) loop so callers give a *tolerance*
/// instead of a timestep. Each accepted interval is computed twice — once
/// with step h and once with two h/2 steps — and the difference drives the
/// local-error estimate, with the h/2 result kept (local extrapolation).
///
/// The driver runs on sim::FlatStepper and is zero-copy per attempt: the
/// two trial evolutions branch off the accepted state via step_from (no
/// checkpoint State copy), an accepted trial is adopted with an O(1)
/// swap_state, and a rejected attempt simply re-reads the untouched
/// accepted state. The h and h/2 companion factorizations live in the
/// steppers' caches, so retries and step-size reuse rebuild nothing.

#include <vector>

#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/sim/source.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::sim {

struct AdaptiveOptions {
  double t_stop = 0.0;       ///< required
  double tol = 1e-4;         ///< local error tolerance (volts, absolute)
  double dt_min = 0.0;       ///< 0 = t_stop * 1e-9
  double dt_max = 0.0;       ///< 0 = t_stop / 50
  std::size_t max_steps = 2'000'000;
  /// Sections to record (empty = all), as in TransientOptions. The error
  /// controller always watches every node; probes only limit recording.
  std::vector<circuit::SectionId> probes;
};

/// Adaptive transient from zero state; the returned time grid is
/// non-uniform. Throws std::runtime_error when the step controller cannot
/// meet the tolerance above dt_min.
[[nodiscard]] TransientResult simulate_tree_adaptive(const circuit::RlcTree& tree, const Source& source,
                                       const AdaptiveOptions& opts);

/// Same, over a prebuilt snapshot (amortizes the SoA conversion across
/// repeated runs).
[[nodiscard]] TransientResult simulate_tree_adaptive(const circuit::FlatTree& tree, const Source& source,
                                       const AdaptiveOptions& opts);

}  // namespace relmore::sim
