#pragma once

/// \file adaptive.hpp
/// Error-controlled transient simulation: wraps the fixed-step tree engine
/// in a step-doubling (Richardson) loop so callers give a *tolerance*
/// instead of a timestep. Each accepted interval is computed twice — once
/// with step h and once with two h/2 steps — and the difference drives the
/// local-error estimate, with the h/2 result kept (local extrapolation).

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/sim/source.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::sim {

struct AdaptiveOptions {
  double t_stop = 0.0;       ///< required
  double tol = 1e-4;         ///< local error tolerance (volts, absolute)
  double dt_min = 0.0;       ///< 0 = t_stop * 1e-9
  double dt_max = 0.0;       ///< 0 = t_stop / 50
  std::size_t max_steps = 2'000'000;
};

/// Adaptive transient from zero state; the returned time grid is
/// non-uniform. Throws std::runtime_error when the step controller cannot
/// meet the tolerance above dt_min.
TransientResult simulate_tree_adaptive(const circuit::RlcTree& tree, const Source& source,
                                       const AdaptiveOptions& opts);

}  // namespace relmore::sim
