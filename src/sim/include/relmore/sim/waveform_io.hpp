#pragma once

/// \file waveform_io.hpp
/// CSV import/export for waveforms and multi-node transient results, so
/// bench outputs plot with any external tool and externally simulated
/// waveforms (e.g. from the exported SPICE decks) can be scored with
/// sim::measure_rising / Waveform::max_abs_difference.

#include <iosfwd>
#include <string>
#include <vector>

#include "relmore/sim/tree_transient.hpp"
#include "relmore/sim/waveform.hpp"

namespace relmore::sim {

/// Writes "time,<label>" rows.
void write_waveform_csv(const Waveform& w, std::ostream& os,
                        const std::string& label = "v");

/// Reads a two-column CSV (header optional); extra columns are ignored.
/// Throws std::invalid_argument on malformed rows or non-increasing time.
[[nodiscard]] Waveform read_waveform_csv(std::istream& is);

/// Writes "time,v0,v1,..." for all (or the selected) nodes of a transient
/// result; labels defaults to "n<i>".
void write_transient_csv(const TransientResult& result, std::ostream& os,
                         const std::vector<std::string>& labels = {});

}  // namespace relmore::sim
