#pragma once

/// \file flat_stepper.hpp
/// SoA transient stepper over a circuit::FlatTree with per-(h, method)
/// companion factorization — the fast path of the reference simulator.
///
/// One Norton-collapse timestep splits into a state-independent half and a
/// state-dependent half. The branch impedance `r_b = R + k·L/h`, the shunt
/// conductance `gc = k·C/h`, the *accumulated* upward conductances
/// `g_node`, and the collapse divisors `g_eq = g_node/(1 + r_b·g_node)`
/// depend only on (R, L, C, h, method) — never on the waveform — so
/// `FlatStepper` factors them once per step size and keeps a two-entry
/// cache (fixed-step runs build exactly two factorizations: backward-Euler
/// startup + trapezoidal; the adaptive driver reuses the cached h and h/2
/// sets across attempts). The per-step work that remains is a pure history
/// sweep over contiguous arrays: one division per section (the
/// state-dependent `j/g_node` Norton source) instead of `TreeStepper`'s
/// six, no AoS `tree.section()` loads, and no per-step allocation.
///
/// Equivalence contract: a `FlatStepper` step executes exactly the scalar
/// operations of `TreeStepper::step` in exactly its association order, so
/// the advanced state is *bitwise identical* to the AoS oracle's — the
/// ≤1-ulp-per-step bound the property suite asserts holds with zero ulps.
/// `TreeStepper` stays as the oracle; everything else routes through here.

#include <cstddef>
#include <vector>

#include "relmore/circuit/flat_tree.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::sim {

/// Advances companion-model state of one FlatTree a timestep at a time.
/// The referenced topology must outlive the stepper.
class FlatStepper {
 public:
  enum class Method { kBackwardEuler, kTrapezoidal };

  /// Full integration state; value type so drivers can checkpoint. The
  /// adaptive driver avoids state copies entirely via step_from/swap_state.
  struct State {
    std::vector<double> i_l;     ///< inductor currents
    std::vector<double> v_l;     ///< inductor voltages
    std::vector<double> i_c;     ///< capacitor currents
    std::vector<double> v_node;  ///< node voltages
    double time = 0.0;
  };

  explicit FlatStepper(const circuit::FlatTree& tree);

  /// Advances by h with the input node held at `v_in_next` (the source
  /// value at the *end* of the step). Throws std::invalid_argument on
  /// h <= 0.
  void step(double h, double v_in_next, Method method);

  /// Advances from `src` instead of the own state; the result lands in
  /// this stepper (own state is fully overwritten, `src` is untouched).
  /// Lets a driver branch two trial evolutions off one checkpoint without
  /// copying it. Passing this stepper's own state() degrades to step().
  void step_from(const State& src, double h, double v_in_next, Method method);

  [[nodiscard]] const std::vector<double>& voltages() const { return state_.v_node; }
  [[nodiscard]] double time() const { return state_.time; }
  [[nodiscard]] const State& state() const { return state_; }
  /// Throws std::invalid_argument when the state arrays don't match the
  /// topology size.
  void set_state(State s);
  /// O(1) state exchange between two steppers of the same topology size —
  /// how the adaptive driver adopts an accepted trial without a copy.
  void swap_state(FlatStepper& other);

  /// Number of companion factorizations built so far (cache misses); a
  /// fixed-step run with backward-Euler startup builds exactly two.
  [[nodiscard]] std::size_t factorizations_built() const { return factorizations_built_; }

 private:
  /// Per-(h, method) state-independent factors. `g_node` is the fully
  /// accumulated upward conductance (own companion + collapsed children).
  struct Factors {
    double h = -1.0;
    Method method = Method::kBackwardEuler;
    std::vector<double> rl;      ///< k·L/h companion inductor impedance
    std::vector<double> gc;      ///< k·C/h companion capacitor conductance
    std::vector<double> r_b;     ///< R + rl branch impedance
    std::vector<double> g_node;  ///< accumulated shunt conductance
    std::vector<double> g_eq;    ///< g_node / (1 + r_b·g_node)
  };

  const Factors& factors(double h, Method method);
  /// The history sweep: reads old state from the four arrays (which may
  /// alias this stepper's own state except v_old, a stable copy), writes
  /// the advanced state into state_.
  void advance(const double* i_l_old, const double* v_l_old, const double* i_c_old,
               const double* v_old, double src_time, double h, double v_in_next,
               const Factors& f);

  const circuit::FlatTree* tree_;
  State state_;
  // Per-step scratch (members to avoid reallocation).
  std::vector<double> v_prev_;
  std::vector<double> e_b_;
  std::vector<double> j_;
  std::vector<double> j_eq_;
  std::vector<double> i_b_;
  Factors cache_[2];
  std::size_t next_slot_ = 0;
  std::size_t factorizations_built_ = 0;
};

/// Fixed-step transient over a prebuilt FlatTree snapshot — the engine
/// under simulate_tree(RlcTree); use this overload to amortize the
/// snapshot across repeated runs. Honors `opts.probes` (empty = record
/// every node).
TransientResult simulate_tree(const circuit::FlatTree& tree, const Source& source,
                              const TransientOptions& opts);

/// Streaming measurement path: first upward crossing of `threshold` at
/// each probe, computed on the fly from a ring of the last sample per
/// probe — O(probes) memory instead of O(n·steps) — with early exit once
/// every probe (threshold > 0) has crossed. Returns one time per probe,
/// bitwise equal to recording the probe's waveform and calling
/// Waveform::first_rise_crossing(threshold); negative when the probe
/// never crosses within t_stop. `opts.probes` is ignored (the explicit
/// list rules).
std::vector<double> simulate_first_crossings(const circuit::FlatTree& tree,
                                             const Source& source, const TransientOptions& opts,
                                             const std::vector<circuit::SectionId>& probes,
                                             double threshold);

}  // namespace relmore::sim
