#include "relmore/sim/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace relmore::sim {

Waveform::Waveform(std::vector<double> times, std::vector<double> values)
    : t_(std::move(times)), v_(std::move(values)) {
  if (t_.size() != v_.size()) throw std::invalid_argument("Waveform: size mismatch");
  for (std::size_t i = 1; i < t_.size(); ++i) {
    if (t_[i] <= t_[i - 1]) {
      throw std::invalid_argument("Waveform: times must be strictly increasing");
    }
  }
}

double Waveform::t_begin() const {
  if (empty()) throw std::logic_error("Waveform: empty");
  return t_.front();
}

double Waveform::t_end() const {
  if (empty()) throw std::logic_error("Waveform: empty");
  return t_.back();
}

double Waveform::value_at(double t) const {
  if (empty()) throw std::logic_error("Waveform: empty");
  if (t <= t_.front()) return v_.front();
  if (t >= t_.back()) return v_.back();
  const auto it = std::upper_bound(t_.begin(), t_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - t_.begin());
  const std::size_t lo = hi - 1;
  const double w = (t - t_[lo]) / (t_[hi] - t_[lo]);
  return v_[lo] + w * (v_[hi] - v_[lo]);
}

double Waveform::first_rise_crossing(double threshold) const {
  for (std::size_t i = 1; i < t_.size(); ++i) {
    if (v_[i - 1] < threshold && v_[i] >= threshold) {
      const double w = (threshold - v_[i - 1]) / (v_[i] - v_[i - 1]);
      return t_[i - 1] + w * (t_[i] - t_[i - 1]);
    }
  }
  if (!v_.empty() && v_.front() >= threshold) return t_.front();
  return -1.0;
}

double Waveform::max_value() const {
  if (empty()) throw std::logic_error("Waveform: empty");
  return *std::max_element(v_.begin(), v_.end());
}

double Waveform::min_value() const {
  if (empty()) throw std::logic_error("Waveform: empty");
  return *std::min_element(v_.begin(), v_.end());
}

double Waveform::final_value() const {
  if (empty()) throw std::logic_error("Waveform: empty");
  return v_.back();
}

double Waveform::max_abs_difference(const Waveform& other) const {
  double m = 0.0;
  for (std::size_t i = 0; i < t_.size(); ++i) {
    m = std::max(m, std::abs(v_[i] - other.value_at(t_[i])));
  }
  return m;
}

std::vector<double> uniform_grid(double t_stop, std::size_t samples) {
  if (samples < 2 || t_stop <= 0.0) throw std::invalid_argument("uniform_grid: bad arguments");
  std::vector<double> t(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    t[i] = t_stop * static_cast<double>(i) / static_cast<double>(samples - 1);
  }
  return t;
}

}  // namespace relmore::sim
