#pragma once

/// \file variation.hpp
/// Process-variation analysis on top of the closed-form delay: Monte-Carlo
/// sampling (the closed form is ~10^4x cheaper than simulation, so large
/// sample counts are free) and the first-order linear estimate built from
/// the closed-form delay gradient (relmore::eed::delay_sensitivity). The
/// agreement of the two is itself a consistency check of the gradient.

#include <cstdint>
#include <vector>

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::analysis {

/// Relative 1-sigma variation per element class (independent Gaussian per
/// section, truncated at +-3 sigma; element values never drop below 1% of
/// nominal).
struct VariationSpec {
  double sigma_resistance = 0.1;
  double sigma_inductance = 0.05;
  double sigma_capacitance = 0.1;
};

/// Summary of a sampled delay distribution.
struct DelayDistribution {
  double nominal = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double q95 = 0.0;  ///< 95th percentile (timing sign-off corner)
  std::size_t samples = 0;
};

/// Execution-plan knobs for the Monte-Carlo sampler. Samples share one
/// topology, so they run through the batched same-topology kernel
/// (engine::BatchedAnalyzer) with lane-groups fanned across an
/// engine::BatchAnalyzer pool. Per-sample RNG seeding and per-lane
/// scalar-identical arithmetic make the sampled distribution *bitwise*
/// independent of both knobs — they change only the schedule.
struct MonteCarloPlan {
  unsigned threads = 0;        ///< BatchAnalyzer worker count (0 = default)
  std::size_t lane_width = 0;  ///< kernel lane width 1/2/4/8 (0 = default)
};

/// All Monte-Carlo knobs in one place. Replaces the old positional
/// (spec, samples, seed, plan) tail.
struct MonteCarloOptions {
  VariationSpec spec;          ///< per-element-class 1-sigma variation
  std::size_t samples = 1000;  ///< sample count (>= 2)
  std::uint64_t seed = 1;      ///< RNG seed; the distribution is deterministic in it
  MonteCarloPlan plan;         ///< execution schedule (never changes results)
};

/// Monte-Carlo delay distribution at `node`, using the closed-form EED
/// delay per sample. Deterministic in options.seed, bitwise-independent of
/// options.plan. Returns a structured Status (empty tree, bad node id,
/// samples < 2, degenerate moments under kThrow) instead of throwing.
[[nodiscard]] util::Result<DelayDistribution> monte_carlo_delay_checked(
    const circuit::RlcTree& tree, circuit::SectionId node, const MonteCarloOptions& options = {});

/// Exception-compatible shim over monte_carlo_delay_checked: throws
/// util::FaultError on any rejected input.
DelayDistribution monte_carlo_delay(const circuit::RlcTree& tree, circuit::SectionId node,
                                    const MonteCarloOptions& options = {});

/// Old positional form.
[[deprecated(
    "use monte_carlo_delay(tree, node, MonteCarloOptions{...}) or "
    "monte_carlo_delay_checked")]]
DelayDistribution monte_carlo_delay(const circuit::RlcTree& tree, circuit::SectionId node,
                                    const VariationSpec& spec, std::size_t samples,
                                    std::uint64_t seed, const MonteCarloPlan& plan = {});

/// First-order standard deviation from the closed-form gradient:
/// sigma_D^2 = sum_k (dD/dX_k * sigma_X * X_k)^2 over X in {R, L, C}.
double delay_stddev_linear(const circuit::RlcTree& tree, circuit::SectionId node,
                           const VariationSpec& spec);

}  // namespace relmore::analysis
