#pragma once

/// \file report.hpp
/// Whole-tree timing reports: the per-node table the CLI tool and examples
/// print, plus sink-skew summaries for clock-network work — all from one
/// O(n) closed-form analysis.

#include <string>
#include <vector>

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/util/table.hpp"

namespace relmore::analysis {

/// One node's closed-form timing signature.
struct NodeTimingRow {
  circuit::SectionId node = circuit::kInput;
  std::string name;
  bool is_sink = false;
  double zeta = 0.0;
  double omega_n = 0.0;
  double delay_50 = 0.0;
  double rise_time = 0.0;
  double overshoot_pct = 0.0;   ///< 0 when not underdamped
  double settling_time = 0.0;
  double wyatt_delay = 0.0;     ///< RC baseline for comparison
};

/// Timing rows for every node (id order).
std::vector<NodeTimingRow> tree_timing_report(const circuit::RlcTree& tree);

/// Renders the report as an aligned util::Table (times in the given unit,
/// e.g. 1e-12 for picoseconds).
util::Table timing_table(const std::vector<NodeTimingRow>& rows, double time_unit = 1e-12,
                         const std::string& unit_label = "ps");

/// Sink-delay summary of a (clock) tree.
struct SkewSummary {
  double min_delay = 0.0;
  double max_delay = 0.0;
  circuit::SectionId fastest = circuit::kInput;
  circuit::SectionId slowest = circuit::kInput;

  [[nodiscard]] double skew() const { return max_delay - min_delay; }
};

/// Skew over all sinks under the closed-form EED delay.
SkewSummary sink_skew(const circuit::RlcTree& tree);

}  // namespace relmore::analysis
