#pragma once

/// \file compare.hpp
/// The experiment harness: produces reference waveforms (the AS/X stand-in)
/// and scores the closed-form models against them, per node. Every figure
/// bench is a thin sweep around compare_step_response().

#include "relmore/circuit/rlc_tree.hpp"
#include "relmore/eed/model.hpp"
#include "relmore/sim/source.hpp"
#include "relmore/sim/waveform.hpp"
#include "relmore/util/diagnostics.hpp"

namespace relmore::analysis {

/// Reference zero-state response at `node`. Uses the exact modal solver
/// when the tree is strictly RLC (every L, C > 0); falls back to the
/// trapezoidal tree engine otherwise.
sim::Waveform reference_waveform(const circuit::RlcTree& tree, circuit::SectionId node,
                                 const sim::Source& source, double t_stop,
                                 std::size_t samples = 2001);

/// A simulation horizon long enough for the node to settle: driven by the
/// EED model's own settling estimate with a safety factor.
double suggest_horizon(const eed::NodeModel& node, double safety = 1.6);

/// One row of a paper-style accuracy comparison at a node (step input).
struct StepComparison {
  double zeta = 0.0;
  double omega_n = 0.0;

  double ref_delay_50 = 0.0;   ///< simulator (reference) 50% delay
  double eed_delay_50 = 0.0;   ///< paper eq. 35 (fitted form)
  double eed_delay_exact = 0.0;  ///< exact crossing of the 2nd-order model
  double wyatt_delay_50 = 0.0; ///< RC baseline ln2·(sum RC)
  double elmore_delay_50 = 0.0;  ///< RC baseline sum RC

  double ref_rise = 0.0;
  double eed_rise = 0.0;

  double ref_overshoot_pct = 0.0;
  double eed_overshoot_pct = 0.0;  ///< paper eq. 39 (0 when not underdamped)

  double delay_err_pct = 0.0;      ///< 100·|eed − ref|/ref (fitted)
  double rise_err_pct = 0.0;
  double wyatt_err_pct = 0.0;
  double waveform_max_err = 0.0;   ///< max |eed(t) − ref(t)| / v_supply
};

/// Knobs for compare_step_response. Replaces the old positional
/// (v_supply, samples) tail — an options struct reads at the call site and
/// leaves room for later knobs without another signature change.
struct CompareOptions {
  double v_supply = 1.0;       ///< step amplitude [V]
  std::size_t samples = 2001;  ///< reference-waveform sample count
};

/// Runs reference simulation + closed forms at one node for a step input.
/// Returns a structured Status (empty tree, bad node id, degenerate
/// moments) instead of throwing; never unwinds.
[[nodiscard]] util::Result<StepComparison> compare_step_response_checked(
    const circuit::RlcTree& tree, circuit::SectionId node, const CompareOptions& options = {});

/// Exception-compatible shim over compare_step_response_checked: throws
/// util::FaultError on any rejected input.
StepComparison compare_step_response(const circuit::RlcTree& tree, circuit::SectionId node,
                                     const CompareOptions& options = {});

/// Old positional form.
[[deprecated(
    "use compare_step_response(tree, node, CompareOptions{...}) or "
    "compare_step_response_checked")]]
StepComparison compare_step_response(const circuit::RlcTree& tree, circuit::SectionId node,
                                     double v_supply, std::size_t samples = 2001);

/// Rescales every inductance by a single factor so that `node` hits
/// `target_zeta` exactly (zeta scales as 1/sqrt(L)); returns the factor.
double scale_inductance_for_zeta(circuit::RlcTree& tree, circuit::SectionId node,
                                 double target_zeta);

}  // namespace relmore::analysis
