#include "relmore/analysis/variation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "relmore/circuit/random_tree.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/eed/sensitivity.hpp"
#include "relmore/engine/batch.hpp"
#include "relmore/engine/timing_engine.hpp"

namespace relmore::analysis {

using circuit::RlcTree;
using circuit::SectionId;

namespace {

/// Standard normal via Box-Muller on the repo's deterministic Rng,
/// truncated to +-3 for physical plausibility.
class GaussianSource {
 public:
  explicit GaussianSource(std::uint64_t seed) : rng_(seed) {}

  double next() {
    if (have_spare_) {
      have_spare_ = false;
      return clamp(spare_);
    }
    double u1 = rng_.uniform();
    if (u1 <= 1e-300) u1 = 1e-300;
    const double u2 = rng_.uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    have_spare_ = true;
    return clamp(mag * std::cos(2.0 * M_PI * u2));
  }

 private:
  static double clamp(double g) { return std::clamp(g, -3.0, 3.0); }
  circuit::Rng rng_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

double perturb(double nominal, double sigma, GaussianSource& gauss) {
  if (nominal == 0.0 || sigma == 0.0) return nominal;
  return std::max(0.01 * nominal, nominal * (1.0 + sigma * gauss.next()));
}

/// Per-sample RNG seed: deterministic in (seed, sample) so the sampled
/// distribution is independent of the number of worker threads and of the
/// order chunks are executed in.
std::uint64_t sample_seed(std::uint64_t seed, std::size_t sample) {
  return seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(sample) + 1);
}

}  // namespace

DelayDistribution monte_carlo_delay(const RlcTree& tree, SectionId node,
                                    const VariationSpec& spec, std::size_t samples,
                                    std::uint64_t seed) {
  if (samples < 2) throw std::invalid_argument("monte_carlo_delay: need >= 2 samples");
  const eed::TreeModel nominal_model = eed::analyze(tree);
  DelayDistribution out;
  out.nominal = eed::delay_50(nominal_model.at(node));
  out.samples = samples;

  // Samples are independent trees: fan contiguous chunks across the pool,
  // one TimingEngine per chunk. Re-perturbing every section is a dense
  // edit batch, so the engine takes its full-sweep fallback — still
  // cheaper than a fresh analyze per sample (no allocations, and only the
  // queried node's second-order model is evaluated).
  std::vector<double> delays(samples);
  engine::BatchAnalyzer pool;
  pool.parallel_chunks(samples, [&](std::size_t begin, std::size_t end) {
    engine::TimingEngine eng(tree);
    std::vector<engine::Edit> edits(tree.size());
    for (std::size_t s = begin; s < end; ++s) {
      GaussianSource gauss(sample_seed(seed, s));
      for (std::size_t k = 0; k < tree.size(); ++k) {
        const auto id = static_cast<SectionId>(k);
        const auto& v = tree.section(id).v;
        edits[k].id = id;
        edits[k].v.resistance = perturb(v.resistance, spec.sigma_resistance, gauss);
        edits[k].v.inductance = perturb(v.inductance, spec.sigma_inductance, gauss);
        edits[k].v.capacitance = perturb(v.capacitance, spec.sigma_capacitance, gauss);
      }
      eng.apply_edits(edits);
      delays[s] = eng.delay_50(node);
    }
  });

  double sum = 0.0;
  out.min = delays.front();
  out.max = delays.front();
  for (double d : delays) {
    sum += d;
    out.min = std::min(out.min, d);
    out.max = std::max(out.max, d);
  }
  out.mean = sum / static_cast<double>(samples);
  double var = 0.0;
  for (double d : delays) var += (d - out.mean) * (d - out.mean);
  out.stddev = std::sqrt(var / static_cast<double>(samples - 1));
  std::sort(delays.begin(), delays.end());
  const auto idx = static_cast<std::size_t>(0.95 * static_cast<double>(samples - 1));
  out.q95 = delays[idx];
  return out;
}

double delay_stddev_linear(const RlcTree& tree, SectionId node, const VariationSpec& spec) {
  const eed::SensitivityReport rep = eed::delay_sensitivity(tree, node);
  double var = 0.0;
  for (std::size_t k = 0; k < tree.size(); ++k) {
    const auto& v = tree.section(static_cast<SectionId>(k)).v;
    const auto& s = rep.sections[k];
    const double dr = s.d_resistance * spec.sigma_resistance * v.resistance;
    const double dl = s.d_inductance * spec.sigma_inductance * v.inductance;
    const double dc = s.d_capacitance * spec.sigma_capacitance * v.capacitance;
    var += dr * dr + dl * dl + dc * dc;
  }
  return std::sqrt(var);
}

}  // namespace relmore::analysis
