#include "relmore/analysis/variation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "relmore/circuit/flat_tree.hpp"
#include "relmore/circuit/random_tree.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/eed/sensitivity.hpp"
#include "relmore/engine/batch.hpp"
#include "relmore/engine/batched.hpp"

namespace relmore::analysis {

using circuit::RlcTree;
using circuit::SectionId;

namespace {

/// Standard normal via Box-Muller on the repo's deterministic Rng,
/// truncated to +-3 for physical plausibility.
class GaussianSource {
 public:
  explicit GaussianSource(std::uint64_t seed) : rng_(seed) {}

  double next() {
    if (have_spare_) {
      have_spare_ = false;
      return clamp(spare_);
    }
    double u1 = rng_.uniform();
    if (u1 <= 1e-300) u1 = 1e-300;
    const double u2 = rng_.uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    have_spare_ = true;
    return clamp(mag * std::cos(2.0 * M_PI * u2));
  }

 private:
  static double clamp(double g) { return std::clamp(g, -3.0, 3.0); }
  circuit::Rng rng_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

double perturb(double nominal, double sigma, GaussianSource& gauss) {
  if (nominal == 0.0 || sigma == 0.0) return nominal;
  return std::max(0.01 * nominal, nominal * (1.0 + sigma * gauss.next()));
}

/// Per-sample RNG seed: deterministic in (seed, sample) so the sampled
/// distribution is independent of the number of worker threads and of the
/// order chunks are executed in.
std::uint64_t sample_seed(std::uint64_t seed, std::size_t sample) {
  return seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(sample) + 1);
}

}  // namespace

namespace {

DelayDistribution monte_carlo_delay_impl(const RlcTree& tree, SectionId node,
                                         const VariationSpec& spec, std::size_t samples,
                                         std::uint64_t seed, const MonteCarloPlan& plan) {
  if (samples < 2) throw std::invalid_argument("monte_carlo_delay: need >= 2 samples");
  const eed::TreeModel nominal_model = eed::analyze(tree);
  DelayDistribution out;
  out.nominal = eed::delay_50(nominal_model.at(node));
  out.samples = samples;

  // All samples share the tree's topology — the batched same-topology
  // kernel's shape, consumed through the streaming path: each sample's
  // values are drawn inside the kernel's per-group fill (seeded from the
  // sample index, so neither the lane width nor the pool's chunking can
  // change a single drawn value) and analyzed while still cache-hot;
  // only the queried node's models are stored.
  const circuit::FlatTree flat(tree);
  const std::size_t n = flat.size();
  engine::BatchedAnalyzer batch(flat, plan.lane_width);
  engine::BatchAnalyzer pool(plan.threads);
  const engine::BatchedModels models = batch.analyze_stream(
      samples,
      [&](std::size_t s, double* r, double* l, double* c) {
        GaussianSource gauss(sample_seed(seed, s));
        for (std::size_t k = 0; k < n; ++k) {
          r[k] = perturb(flat.resistance()[k], spec.sigma_resistance, gauss);
          l[k] = perturb(flat.inductance()[k], spec.sigma_inductance, gauss);
          c[k] = perturb(flat.capacitance()[k], spec.sigma_capacitance, gauss);
        }
      },
      {node}, &pool);
  std::vector<double> delays(samples);
  for (std::size_t s = 0; s < samples; ++s) delays[s] = models.delay_50(s, node);

  double sum = 0.0;
  out.min = delays.front();
  out.max = delays.front();
  for (double d : delays) {
    sum += d;
    out.min = std::min(out.min, d);
    out.max = std::max(out.max, d);
  }
  out.mean = sum / static_cast<double>(samples);
  double var = 0.0;
  for (double d : delays) var += (d - out.mean) * (d - out.mean);
  out.stddev = std::sqrt(var / static_cast<double>(samples - 1));
  std::sort(delays.begin(), delays.end());
  const auto idx = static_cast<std::size_t>(0.95 * static_cast<double>(samples - 1));
  out.q95 = delays[idx];
  return out;
}

}  // namespace

util::Result<DelayDistribution> monte_carlo_delay_checked(const RlcTree& tree, SectionId node,
                                                          const MonteCarloOptions& options) {
  if (tree.empty()) {
    return util::Status(util::ErrorCode::kEmptyTree, "monte_carlo_delay: empty tree");
  }
  if (node < 0 || static_cast<std::size_t>(node) >= tree.size()) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "monte_carlo_delay: node id out of range", static_cast<int>(node));
  }
  if (options.samples < 2) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "monte_carlo_delay: need >= 2 samples");
  }
  try {
    return monte_carlo_delay_impl(tree, node, options.spec, options.samples, options.seed,
                                  options.plan);
  } catch (const util::FaultError& e) {
    return e.status();
  } catch (const std::invalid_argument& e) {
    return util::Status(util::ErrorCode::kInvalidArgument, e.what());
  }
}

DelayDistribution monte_carlo_delay(const RlcTree& tree, SectionId node,
                                    const MonteCarloOptions& options) {
  return monte_carlo_delay_checked(tree, node, options).value();
}

DelayDistribution monte_carlo_delay(const RlcTree& tree, SectionId node,
                                    const VariationSpec& spec, std::size_t samples,
                                    std::uint64_t seed, const MonteCarloPlan& plan) {
  return monte_carlo_delay_impl(tree, node, spec, samples, seed, plan);
}

double delay_stddev_linear(const RlcTree& tree, SectionId node, const VariationSpec& spec) {
  const eed::SensitivityReport rep = eed::delay_sensitivity(tree, node);
  double var = 0.0;
  for (std::size_t k = 0; k < tree.size(); ++k) {
    const auto& v = tree.section(static_cast<SectionId>(k)).v;
    const auto& s = rep.sections[k];
    const double dr = s.d_resistance * spec.sigma_resistance * v.resistance;
    const double dl = s.d_inductance * spec.sigma_inductance * v.inductance;
    const double dc = s.d_capacitance * spec.sigma_capacitance * v.capacitance;
    var += dr * dr + dl * dl + dc * dc;
  }
  return std::sqrt(var);
}

}  // namespace relmore::analysis
