#include "relmore/analysis/report.hpp"

#include <algorithm>
#include <stdexcept>

#include "relmore/eed/eed.hpp"

namespace relmore::analysis {

using circuit::RlcTree;
using circuit::SectionId;

std::vector<NodeTimingRow> tree_timing_report(const RlcTree& tree) {
  if (tree.empty()) throw std::invalid_argument("tree_timing_report: empty tree");
  const eed::TreeModel model = eed::analyze(tree);
  const auto leaves = tree.leaves();
  std::vector<NodeTimingRow> rows;
  rows.reserve(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto id = static_cast<SectionId>(i);
    const eed::NodeModel& nm = model.at(id);
    NodeTimingRow row;
    row.node = id;
    row.name = tree.section(id).name.empty() ? "n" + std::to_string(i) : tree.section(id).name;
    row.is_sink = std::find(leaves.begin(), leaves.end(), id) != leaves.end();
    row.zeta = nm.zeta;
    row.omega_n = nm.omega_n;
    row.delay_50 = eed::delay_50(nm);
    row.rise_time = eed::rise_time(nm);
    row.overshoot_pct = nm.underdamped() ? eed::overshoot_pct(nm, 1) : 0.0;
    row.settling_time = eed::settling_time(nm);
    row.wyatt_delay = eed::wyatt_delay_50(nm.sum_rc);
    rows.push_back(std::move(row));
  }
  return rows;
}

util::Table timing_table(const std::vector<NodeTimingRow>& rows, double time_unit,
                         const std::string& unit_label) {
  if (time_unit <= 0.0) throw std::invalid_argument("timing_table: bad time unit");
  util::Table table({"node", "sink", "zeta", "t50 [" + unit_label + "]",
                     "rise [" + unit_label + "]", "overshoot [%]",
                     "settle [" + unit_label + "]", "t50 Wyatt [" + unit_label + "]"});
  for (const NodeTimingRow& r : rows) {
    table.add_row({r.name, r.is_sink ? "*" : "", util::Table::fmt(r.zeta, 4),
                   util::Table::fmt(r.delay_50 / time_unit, 5),
                   util::Table::fmt(r.rise_time / time_unit, 5),
                   util::Table::fmt(r.overshoot_pct, 4),
                   util::Table::fmt(r.settling_time / time_unit, 5),
                   util::Table::fmt(r.wyatt_delay / time_unit, 5)});
  }
  return table;
}

SkewSummary sink_skew(const RlcTree& tree) {
  const auto sinks = tree.leaves();
  if (sinks.empty()) throw std::invalid_argument("sink_skew: tree has no sinks");
  const eed::TreeModel model = eed::analyze(tree);
  SkewSummary out;
  out.min_delay = 1e300;
  out.max_delay = -1e300;
  for (SectionId s : sinks) {
    const double d = eed::delay_50(model.at(s));
    if (d < out.min_delay) {
      out.min_delay = d;
      out.fastest = s;
    }
    if (d > out.max_delay) {
      out.max_delay = d;
      out.slowest = s;
    }
  }
  return out;
}

}  // namespace relmore::analysis
