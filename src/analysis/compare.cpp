#include "relmore/analysis/compare.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "relmore/circuit/builders.hpp"
#include "relmore/eed/eed.hpp"
#include "relmore/sim/measure.hpp"
#include "relmore/sim/state_space.hpp"
#include "relmore/sim/tree_transient.hpp"

namespace relmore::analysis {

using circuit::RlcTree;
using circuit::SectionId;

namespace {

bool strictly_rlc(const RlcTree& tree) {
  for (const auto& s : tree.sections()) {
    if (s.v.inductance <= 0.0 || s.v.capacitance <= 0.0) return false;
  }
  return true;
}

}  // namespace

sim::Waveform reference_waveform(const RlcTree& tree, SectionId node, const sim::Source& source,
                                 double t_stop, std::size_t samples) {
  if (t_stop <= 0.0) throw std::invalid_argument("reference_waveform: t_stop must be positive");
  const std::vector<double> grid = sim::uniform_grid(t_stop, samples);
  if (strictly_rlc(tree) && tree.size() <= 96) {
    // Exact modal solution: no discretization error at all.
    const sim::ModalSolver solver(tree);
    return solver.response_waveform(node, source, grid);
  }
  // Large or degenerate trees: trapezoidal tree engine with a fine step.
  // Only the compared node is recorded — at 4000+ steps the full-tree
  // recording used to dominate this path's memory traffic.
  sim::TransientOptions opts;
  opts.t_stop = t_stop;
  opts.dt = std::min(sim::suggest_timestep(tree, 0.05), t_stop / 4000.0);
  opts.probes = {node};
  const sim::TransientResult res = sim::simulate_tree(tree, source, opts);
  const sim::Waveform full = res.waveform(node);
  std::vector<double> v(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) v[i] = full.value_at(grid[i]);
  return sim::Waveform(grid, v);
}

double suggest_horizon(const eed::NodeModel& node, double safety) {
  double horizon;
  if (!std::isfinite(node.omega_n)) {
    horizon = std::log(100.0) * node.sum_rc;  // 1% settling of the RC pole
  } else if (node.zeta < 1.0) {
    const double zeta = std::max(node.zeta, 0.05);
    horizon = std::log(100.0) / (zeta * node.omega_n);
  } else {
    horizon = eed::scaled_crossing_exact(node.zeta, 0.99) / node.omega_n;
  }
  return safety * horizon;
}

namespace {

StepComparison compare_step_response_impl(const RlcTree& tree, SectionId node, double v_supply,
                                          std::size_t samples) {
  const eed::TreeModel model = eed::analyze(tree);
  const eed::NodeModel& nm = model.at(node);

  StepComparison out;
  out.zeta = nm.zeta;
  out.omega_n = nm.omega_n;

  const double t_stop = suggest_horizon(nm);
  const sim::Waveform ref =
      reference_waveform(tree, node, sim::StepSource{v_supply}, t_stop, samples);
  const sim::TimingMeasurement ref_m = sim::measure_rising(ref, v_supply);

  out.ref_delay_50 = ref_m.delay_50;
  out.ref_rise = ref_m.rise_10_90;
  out.ref_overshoot_pct = ref_m.overshoot_pct;

  out.eed_delay_50 = eed::delay_50(nm);
  out.eed_delay_exact = eed::delay_50_exact(nm);
  out.wyatt_delay_50 = eed::wyatt_delay_50(nm.sum_rc);
  out.elmore_delay_50 = eed::elmore_delay_50(nm.sum_rc);
  out.eed_rise = eed::rise_time(nm);
  out.eed_overshoot_pct = nm.underdamped() ? eed::overshoot_pct(nm, 1) : 0.0;

  const sim::Waveform eed_wave = eed::step_waveform(nm, ref.times(), v_supply);
  out.waveform_max_err = ref.max_abs_difference(eed_wave) / v_supply;

  auto pct = [](double est, double ref_v) {
    return ref_v > 0.0 ? 100.0 * std::abs(est - ref_v) / ref_v : 0.0;
  };
  out.delay_err_pct = pct(out.eed_delay_50, out.ref_delay_50);
  out.rise_err_pct = pct(out.eed_rise, out.ref_rise);
  out.wyatt_err_pct = pct(out.wyatt_delay_50, out.ref_delay_50);
  return out;
}

}  // namespace

util::Result<StepComparison> compare_step_response_checked(const RlcTree& tree, SectionId node,
                                                           const CompareOptions& options) {
  if (tree.empty()) {
    return util::Status(util::ErrorCode::kEmptyTree, "compare_step_response: empty tree");
  }
  if (node < 0 || static_cast<std::size_t>(node) >= tree.size()) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "compare_step_response: node id out of range",
                        static_cast<int>(node));
  }
  if (options.v_supply <= 0.0 || options.samples < 2) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "compare_step_response: v_supply must be positive and samples >= 2");
  }
  try {
    return compare_step_response_impl(tree, node, options.v_supply, options.samples);
  } catch (const util::FaultError& e) {
    return e.status();
  } catch (const std::invalid_argument& e) {
    return util::Status(util::ErrorCode::kInvalidArgument, e.what());
  }
}

StepComparison compare_step_response(const RlcTree& tree, SectionId node,
                                     const CompareOptions& options) {
  return compare_step_response_checked(tree, node, options).value();
}

StepComparison compare_step_response(const RlcTree& tree, SectionId node, double v_supply,
                                     std::size_t samples) {
  return compare_step_response_impl(tree, node, v_supply, samples);
}

double scale_inductance_for_zeta(RlcTree& tree, SectionId node, double target_zeta) {
  if (target_zeta <= 0.0) {
    throw std::invalid_argument("scale_inductance_for_zeta: target must be positive");
  }
  const eed::TreeModel model = eed::analyze(tree);
  const double zeta = model.at(node).zeta;
  if (!std::isfinite(zeta)) {
    throw std::invalid_argument("scale_inductance_for_zeta: node has no inductance on path");
  }
  const double factor = (zeta / target_zeta) * (zeta / target_zeta);
  circuit::scale_inductances(tree, factor);
  return factor;
}

}  // namespace relmore::analysis
